open Emc_workloads

(** The measurement substrate of Figure 1's loop: compile the workload at the
    design point's compiler settings (with the machine description matching
    the design point's issue width, as the paper does by building one gcc per
    functional-unit configuration) and simulate it on the design point's
    microarchitecture, returning whole-program cycles.

    Compiled binaries are memoized per (workload, flags, issue-width) and
    measurements per full configuration — D-optimal designs repeat corner
    points, and searches revisit configurations. The measurement memo can
    additionally be backed by a persistent on-disk cache (JSONL, one
    key/value pair per line) that is loaded at {!create} and appended on
    every fresh simulation, so a re-run of an experiment against a warm
    cache performs zero simulations. Batches of independent design points
    ({!respond_many} and friends) fan out across [scale.jobs] forked worker
    processes via {!Emc_par.Par}. *)

(** All three responses of one simulated design point — what crosses the
    wire between a fleet coordinator and its workers. *)
type triple = { t_cycles : float; t_energy : float; t_code_size : float }

type t = {
  scale : Scale.t;
  binaries : (string, Emc_isa.Isa.program) Hashtbl.t;
  results : (string, float) Hashtbl.t;
  cache : out_channel option;  (** append side of the persistent cache *)
  journal : out_channel option;  (** append side of the per-run journal *)
  mutable simulations : int;  (** actual simulator runs (cache misses) *)
  mutable compiles : int;
  mutable binary_hits : int;  (** compile requests served from the memo *)
  mutable result_hits : int;  (** measurements served from the memo *)
  mutable preloaded : int;  (** results loaded from the persistent cache *)
  mutable remote : remote option;
      (** when set (by [Fleet.attach]), batch cache misses are resolved by
          this function instead of local simulation *)
}

and remote =
  Emc_workloads.Workload.t ->
  variant:Emc_workloads.Workload.variant ->
  (Emc_opt.Flags.t * Emc_sim.Config.t) array ->
  triple array

module Metrics = Emc_obs.Metrics
module Trace = Emc_obs.Trace

let m_compiles = Metrics.counter "measure.compiles"
let m_binary_hits = Metrics.counter "measure.binary_cache_hits"
let m_simulations = Metrics.counter "measure.simulations"
let m_result_hits = Metrics.counter "measure.result_cache_hits"
let m_preloaded = Metrics.counter "measure.cache_preloaded"

(* Wall-clock seconds per simulator run (cache misses only). The simulator
   is the pipeline's dominant cost and the subject of its perf baseline
   (BENCH_sim.json); exporting the distribution makes a regression visible
   in any experiment's metrics dump, not just in the bench harness. *)
let h_sim_seconds = Metrics.histogram "measure.sim_seconds"

(* ---------------- persistent result cache ---------------- *)

(* One JSON object per line. The value is a hex float literal (%h) rather
   than a JSON number: decimal printing is lossy and the cache must
   round-trip bit-identically for warm re-runs to reproduce datasets
   exactly. *)
let cache_line key v =
  Emc_obs.Json.to_string
    (Emc_obs.Json.Obj
       [ ("k", Emc_obs.Json.Str key); ("v", Emc_obs.Json.Str (Printf.sprintf "%h" v)) ])

(* Journal/store header lines ({"schema":...}) are structural, not
   entries: skipped silently so a run journal doubles as a result cache. *)
let cache_entry_of_line line =
  match Emc_obs.Json.parse line with
  | Error _ -> `Malformed
  | Ok j -> (
      if Emc_obs.Json.member "schema" j <> None then `Header
      else
        match (Emc_obs.Json.member "k" j, Emc_obs.Json.member "v" j) with
        | Some (Emc_obs.Json.Str k), Some v -> (
            match Emc_obs.Json.hex_of v with
            | Some f -> `Entry (k, f)
            | None -> `Malformed)
        | _ -> `Malformed)

(* A killed run can leave the file's last line torn mid-write (no trailing
   newline). Loads treat it like any other malformed line; the append side
   must also know, or the next record would be glued onto the torn tail,
   destroying both. *)
let ends_with_newline path =
  match open_in_bin path with
  | exception Sys_error _ -> true
  | ic ->
      let len = in_channel_length ic in
      let r =
        len = 0
        ||
        (seek_in ic (len - 1);
         match input_char ic with '\n' -> true | _ | (exception End_of_file) -> false)
      in
      close_in ic;
      r

let cache_load results path =
  if not (Sys.file_exists path) then (0, 0)
  else begin
    let ic = open_in path in
    let loaded = ref 0 and bad = ref 0 in
    (try
       while true do
         let line = input_line ic in
         if String.trim line <> "" then
           match cache_entry_of_line line with
           | `Entry (k, v) ->
               Hashtbl.replace results k v;
               incr loaded
           | `Header -> ()
           | `Malformed -> incr bad
       done
     with End_of_file -> ());
    close_in ic;
    (!loaded, !bad)
  end

let append_line oc line =
  output_string oc line;
  output_char oc '\n';
  flush oc

let cache_append t key v =
  let line = lazy (cache_line key v) in
  let put = function None -> () | Some oc -> append_line oc (Lazy.force line) in
  put t.cache;
  put t.journal

(* Open the append side of a JSONL file, first terminating any torn
   trailing line so appended records start on a fresh line. *)
let open_append path =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  if not (ends_with_newline path) then begin
    Emc_obs.Log.warn ~src:"measure"
      ~fields:[ ("file", Emc_obs.Json.Str path) ]
      "%s ends mid-line (torn write from a killed run); terminating it before appending" path;
    output_char oc '\n';
    flush oc
  end;
  oc

let cache_open_append = open_append

let load_into results ~what path =
  let loaded, bad = cache_load results path in
  if bad > 0 then
    Emc_obs.Log.warn ~src:"measure"
      ~fields:[ ("file", Emc_obs.Json.Str path); ("lines", Emc_obs.Json.Int bad) ]
      "skipped %d malformed lines in %s %s" bad what path;
  Emc_obs.Log.info ~src:"measure"
    ~fields:[ ("file", Emc_obs.Json.Str path); ("results", Emc_obs.Json.Int loaded) ]
    "%s %s: %d measurements preloaded" what path loaded;
  Metrics.add m_preloaded loaded;
  loaded

let create ?cache_file ?journal_file scale =
  let cache_file =
    match cache_file with Some _ as f -> f | None -> Sys.getenv_opt "EMC_CACHE"
  in
  (* the same file serving as both would double every appended line *)
  let journal_file = if journal_file = cache_file then None else journal_file in
  let results = Hashtbl.create 1024 in
  let cache, preloaded =
    match cache_file with
    | None -> (None, 0)
    | Some path ->
        let loaded = load_into results ~what:"result cache" path in
        (Some (open_append path), loaded)
  in
  let journal, preloaded =
    match journal_file with
    | None -> (None, preloaded)
    | Some path ->
        let loaded = load_into results ~what:"run journal" path in
        (Some (open_append path), preloaded + loaded)
  in
  { scale; binaries = Hashtbl.create 64; results; cache; journal; simulations = 0;
    compiles = 0; binary_hits = 0; result_hits = 0; preloaded; remote = None }

let set_remote t remote = t.remote <- Some remote

(* Inject results fetched from a shared store (fleet workers): memo-only —
   not appended to the cache/journal, which record this process's own
   measurements. Returns how many keys were new. *)
let preload t entries =
  let added =
    List.fold_left
      (fun n (k, v) ->
        if Hashtbl.mem t.results k then n
        else begin
          Hashtbl.replace t.results k v;
          n + 1
        end)
      0 entries
  in
  t.preloaded <- t.preloaded + added;
  Metrics.add m_preloaded added;
  added

let binary_key (w : Workload.t) ~issue_width (flags : Emc_opt.Flags.t) =
  Printf.sprintf "%s|%d|%s" w.name issue_width (Emc_opt.Flags.to_string flags)

let compile t (w : Workload.t) (flags : Emc_opt.Flags.t) ~issue_width =
  let key = binary_key w ~issue_width flags in
  match Hashtbl.find_opt t.binaries key with
  | Some p ->
      t.binary_hits <- t.binary_hits + 1;
      Metrics.incr m_binary_hits;
      p
  | None ->
      let prog =
        Trace.with_span ~cat:"compile"
          ~args:(fun () ->
            [ ("workload", Emc_obs.Json.Str w.name);
              ("issue_width", Emc_obs.Json.Int issue_width) ])
          "compile"
          (fun () -> Emc_codegen.Compiler.compile_source ~issue_width flags w.source)
      in
      t.compiles <- t.compiles + 1;
      Metrics.incr m_compiles;
      Hashtbl.replace t.binaries key prog;
      prog

let setup_func arrays (f : Emc_sim.Func.t) =
  List.iter
    (fun (name, data) ->
      match data with
      | Workload.DInt a -> Array.iteri (fun i v -> Emc_sim.Func.set_global_int f name i v) a
      | Workload.DFloat a -> Array.iteri (fun i v -> Emc_sim.Func.set_global_float f name i v) a)
    arrays

(** Which system response to model. The paper's evaluation uses execution
    time; §2.2 points out the same machinery fits power consumption or code
    size, both of which the simulator substrate also reports. *)
type response = Cycles | Energy | CodeSize

let response_name = function Cycles -> "cycles" | Energy -> "energy" | CodeSize -> "code-size"

let result_key response (w : Workload.t) ~variant (flags : Emc_opt.Flags.t)
    (march : Emc_sim.Config.t) =
  Printf.sprintf "%s|%s|%s|%s|%s" (response_name response) w.name
    (Workload.variant_name variant) (Emc_opt.Flags.to_string flags)
    (Emc_sim.Config.to_string march)

(* All three content addresses of one design point, in the fixed storage
   order. This is the batched pre-filter hook: the fleet coordinator maps
   it over a whole work array to build one /lookup for every key of every
   point, resolving fully-stored points before anything is dispatched. *)
let triple_keys (w : Workload.t) ~variant ((flags : Emc_opt.Flags.t), (march : Emc_sim.Config.t)) =
  ( result_key Cycles w ~variant flags march,
    result_key Energy w ~variant flags march,
    result_key CodeSize w ~variant flags march )

let run_sim t (w : Workload.t) ~variant (flags : Emc_opt.Flags.t) (march : Emc_sim.Config.t) =
  Trace.with_span ~cat:"measure"
    ~args:(fun () ->
      [ ("workload", Emc_obs.Json.Str w.name);
        ("variant", Emc_obs.Json.Str (Workload.variant_name variant)) ])
    "measure"
    (fun () ->
      let prog = compile t w flags ~issue_width:march.issue_width in
      let arrays = w.arrays ~scale:t.scale.Scale.workload_scale ~variant in
      let setup = setup_func arrays in
      let t0 = Unix.gettimeofday () in
      let r =
        Trace.with_span ~cat:"sim" "simulate" (fun () ->
            match t.scale.Scale.smarts with
            | Some params -> Emc_sim.Smarts.run_sampled ~params march prog ~setup
            | None -> Emc_sim.Smarts.run_full march prog ~setup)
      in
      Metrics.observe h_sim_seconds (Unix.gettimeofday () -. t0);
      t.simulations <- t.simulations + 1;
      Metrics.incr m_simulations;
      r)

let triple_of_result (r : Emc_sim.Smarts.result) =
  { t_cycles = r.Emc_sim.Smarts.cycles; t_energy = r.Emc_sim.Smarts.energy;
    t_code_size = float_of_int r.Emc_sim.Smarts.static_instrs }

(* one simulation yields all three responses: memoize (and persist) them
   all, in a fixed order so cache/journal files are byte-stable *)
let store_triple t w ~variant flags march (tr : triple) =
  let store resp v =
    let k = result_key resp w ~variant flags march in
    Hashtbl.replace t.results k v;
    cache_append t k v
  in
  store Cycles tr.t_cycles;
  store Energy tr.t_energy;
  store CodeSize tr.t_code_size

let store_all t w ~variant flags march (r : Emc_sim.Smarts.result) =
  store_triple t w ~variant flags march (triple_of_result r)

(** Measured response; results are memoized per full configuration. *)
let respond ?(response = Cycles) t (w : Workload.t) ~variant (flags : Emc_opt.Flags.t)
    (march : Emc_sim.Config.t) =
  let key = result_key response w ~variant flags march in
  match Hashtbl.find_opt t.results key with
  | Some c ->
      t.result_hits <- t.result_hits + 1;
      Metrics.incr m_result_hits;
      c
  | None ->
      let r = run_sim t w ~variant flags march in
      store_all t w ~variant flags march r;
      Hashtbl.find t.results key

(* ---------------- batched / parallel measurement ---------------- *)

(* One worker task: simulate one configuration. Runs in a forked child whose
   memo tables are copy-on-write snapshots of the parent's; the parent
   compiles every needed binary before forking, so the child's compile
   lookup always hits the inherited memo. *)
let sim_task t w ~variant ((flags : Emc_opt.Flags.t), (march : Emc_sim.Config.t)) =
  run_sim t w ~variant flags march

(* Merge a batch of computed triples into the memo (and the persistent
   cache/journal), accounting each exactly as the sequential path would —
   on the coordinator, a point resolved by a remote worker counts as a
   simulation: it is a cache miss that cost one simulator run somewhere. *)
let merge_batch t w ~variant work triples =
  Array.iteri
    (fun j (flags, march) ->
      store_triple t w ~variant flags march triples.(j);
      t.simulations <- t.simulations + 1;
      Metrics.incr m_simulations)
    work

(* Every key now resolves from the memo; a point is a cache hit unless it
   is the first occurrence of a key we just computed. *)
let resolve_keys t keys missing =
  let first = Hashtbl.create 32 in
  Array.map
    (fun k ->
      let v = Hashtbl.find t.results k in
      if Hashtbl.mem missing k && not (Hashtbl.mem first k) then Hashtbl.add first k ()
      else begin
        t.result_hits <- t.result_hits + 1;
        Metrics.incr m_result_hits
      end;
      v)
    keys

let respond_many ?(response = Cycles) t (w : Workload.t) ~variant
    (pairs : (Emc_opt.Flags.t * Emc_sim.Config.t) array) =
  let jobs = t.scale.Scale.jobs in
  let keys = Array.map (fun (f, m) -> result_key response w ~variant f m) pairs in
  (* unique uncached configurations, in first-occurrence order: D-optimal
     designs repeat corner points, and simulating a duplicate twice would
     waste a worker *)
  let missing = Hashtbl.create 32 in
  let work = ref [] in
  Array.iteri
    (fun i k ->
      if not (Hashtbl.mem t.results k || Hashtbl.mem missing k) then begin
        Hashtbl.add missing k ();
        work := pairs.(i) :: !work
      end)
    keys;
  let work = Array.of_list (List.rev !work) in
  (* compile in the parent/coordinator, one call per work item in
     sequential order: forked children inherit the binary memo
     copy-on-write (no recompiles, no binaries built twice by sibling
     workers), remote workers compile their own — and either way the
     compile / binary-hit counters advance exactly as the sequential
     path's would *)
  let compile_work () =
    Array.iter
      (fun ((flags : Emc_opt.Flags.t), (march : Emc_sim.Config.t)) ->
        ignore (compile t w flags ~issue_width:march.issue_width))
      work
  in
  match t.remote with
  | Some remote when Array.length work > 0 ->
      compile_work ();
      let triples =
        Trace.with_span ~cat:"measure"
          ~args:(fun () ->
            [ ("workload", Emc_obs.Json.Str w.name);
              ("points", Emc_obs.Json.Int (Array.length pairs));
              ("misses", Emc_obs.Json.Int (Array.length work)) ])
          "measure.fleet"
          (fun () -> remote w ~variant work)
      in
      merge_batch t w ~variant work triples;
      resolve_keys t keys missing
  | _ ->
      if jobs <= 1 || Array.length work <= 1 then
        (* sequential path: byte-for-byte the reference semantics *)
        Array.map (fun (f, m) -> respond ~response t w ~variant f m) pairs
      else begin
        compile_work ();
        let sims =
          Trace.with_span ~cat:"measure"
            ~args:(fun () ->
              [ ("workload", Emc_obs.Json.Str w.name);
                ("points", Emc_obs.Json.Int (Array.length pairs));
                ("misses", Emc_obs.Json.Int (Array.length work));
                ("jobs", Emc_obs.Json.Int jobs) ])
            "measure.batch"
            (fun () -> Emc_par.Par.map ~jobs (sim_task t w ~variant) work)
        in
        merge_batch t w ~variant work (Array.map triple_of_result sims);
        resolve_keys t keys missing
      end

let cycles_many t w ~variant pairs = respond_many ~response:Cycles t w ~variant pairs

let respond_coded_many ?response t w ~variant (points : float array array) =
  respond_many ?response t w ~variant (Array.map Params.configs_of_coded points)

let cycles_coded_many t w ~variant points =
  respond_coded_many ~response:Cycles t w ~variant points

(** Measured execution time, in cycles. *)
let cycles t w ~variant flags march = respond ~response:Cycles t w ~variant flags march

(** Measure at a coded 25-dimensional design point. *)
let cycles_coded t w ~variant coded =
  let flags, march = Params.configs_of_coded coded in
  cycles t w ~variant flags march

(** Measure an arbitrary response at a coded design point. *)
let respond_coded ?response t w ~variant coded =
  let flags, march = Params.configs_of_coded coded in
  respond ?response t w ~variant flags march

(* ---------------- cache maintenance (emc cache) ---------------- *)

type cache_stats = {
  cs_lines : int;  (** non-blank lines in the file *)
  cs_entries : int;  (** well-formed key/value entries *)
  cs_unique : int;  (** distinct keys *)
  cs_duplicates : int;  (** entries repeating an earlier key *)
  cs_headers : int;  (** schema header lines (run journals) *)
  cs_malformed : int;  (** unparseable lines, the torn tail included *)
  cs_torn : bool;  (** the file ends mid-line (torn trailing write) *)
  cs_top_duplicates : (string * int) list;
      (** keys appearing more than once, by occurrence count descending
          (ties broken by key), capped at ten — the hit-key report *)
}

(* One streaming pass shared by report and compact. [emit] sees every line
   that a compacted file keeps, verbatim: schema headers and the first
   occurrence of each key. *)
let cache_scan ?(emit = fun _ -> ()) path =
  let seen = Hashtbl.create 1024 in
  let lines = ref 0 and entries = ref 0 and dups = ref 0 in
  let headers = ref 0 and malformed = ref 0 in
  (if Sys.file_exists path then begin
     let ic = open_in path in
     (try
        while true do
          let line = input_line ic in
          if String.trim line <> "" then begin
            incr lines;
            match cache_entry_of_line line with
            | `Header ->
                incr headers;
                emit line
            | `Malformed -> incr malformed
            | `Entry (k, _) ->
                incr entries;
                (match Hashtbl.find_opt seen k with
                | None ->
                    Hashtbl.add seen k 1;
                    emit line
                | Some n ->
                    Hashtbl.replace seen k (n + 1);
                    incr dups)
          end
        done
      with End_of_file -> ());
     close_in ic
   end);
  let top =
    Hashtbl.fold (fun k n acc -> if n > 1 then (k, n) :: acc else acc) seen []
    |> List.sort (fun (k1, n1) (k2, n2) ->
           if n1 <> n2 then compare n2 n1 else compare k1 k2)
    |> List.filteri (fun i _ -> i < 10)
  in
  { cs_lines = !lines; cs_entries = !entries; cs_unique = Hashtbl.length seen;
    cs_duplicates = !dups; cs_headers = !headers; cs_malformed = !malformed;
    cs_torn = Sys.file_exists path && not (ends_with_newline path);
    cs_top_duplicates = top }

let cache_stats path = cache_scan path

(* Rewrite the file keeping headers and the first occurrence of each key,
   byte-verbatim (the simulator is deterministic, so duplicate keys carry
   identical values; first-wins is the deterministic policy regardless),
   dropping malformed lines and the torn tail. tmp + rename in the same
   directory, so a concurrent reader never sees a half-written file. *)
let cache_compact path =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir (Filename.basename path) ".compact" in
  let oc = open_out tmp in
  let stats = cache_scan ~emit:(fun line -> append_line oc line) path in
  close_out oc;
  Sys.rename tmp path;
  stats
