open Emc_util
open Emc_regress
open Emc_workloads

(** Drivers that regenerate every table and figure of the paper's evaluation
    (plus Figure 3 from §4.1). Each function prints a self-contained text
    section — the bench harness runs them all — and returns the underlying
    numbers for programmatic use (tests assert on the returned structures).

    Shared per-workload state (D-optimal designs, measured train/test sets,
    fitted models) is built once and reused across experiments, exactly as
    the paper reuses its 400-point training data. *)

type wdata = {
  workload : Workload.t;
  train : Dataset.t;
  test : Dataset.t;
  models : (Modeling.technique * Model.t) list;
}

type ctx = {
  scale : Scale.t;
  measure : Measure.t;
  rng : Rng.t;
  mutable wdata : (string * wdata) list;
}

let create ?(seed = 42) ?scale ?cache_file ?journal_file () =
  let scale = match scale with Some s -> s | None -> Scale.of_env () in
  { scale; measure = Measure.create ?cache_file ?journal_file scale; rng = Rng.create seed;
    wdata = [] }

let short_name (w : Workload.t) =
  match String.index_opt w.name '.' with
  | Some i -> String.sub w.name (i + 1) (String.length w.name - i - 1)
  | None -> w.name

let progress ?fields fmt = Emc_obs.Log.info ~src:"prepare" ?fields fmt

(** Build (or fetch) the designs, measurements and models for one workload. *)
let prepare ctx (w : Workload.t) =
  match List.assoc_opt w.name ctx.wdata with
  | Some d -> d
  | None ->
      Emc_obs.Trace.with_span ~cat:"phase"
        ~args:(fun () -> [ ("workload", Emc_obs.Json.Str w.name) ])
        "prepare"
        (fun () ->
          let t0 = Unix.gettimeofday () in
          progress "%s: generating D-optimal designs (train=%d test=%d)..." w.name
            ctx.scale.train_n ctx.scale.test_n;
          let rng = Rng.split ctx.rng in
          let space = Params.space_all in
          let train_pts =
            Emc_doe.Doe.generate ~sweeps:ctx.scale.doe_sweeps
              ~cand_factor:ctx.scale.doe_cand_factor rng space ~n:ctx.scale.train_n
          in
          let test_pts = Emc_doe.Doe.lhs rng space ctx.scale.test_n in
          progress "%s: measuring %d+%d design points (jobs=%d)..." w.name ctx.scale.train_n
            ctx.scale.test_n ctx.scale.jobs;
          let train = Modeling.build_dataset ctx.measure w ~variant:Workload.Train train_pts in
          let test = Modeling.build_dataset ctx.measure w ~variant:Workload.Train test_pts in
          progress "%s: fitting models..." w.name;
          let models = List.map (fun t -> (t, Modeling.fit t train)) Modeling.all_techniques in
          let d = { workload = w; train; test; models } in
          ctx.wdata <- (w.name, d) :: ctx.wdata;
          progress
            ~fields:
              [ ("seconds", Emc_obs.Json.Float (Unix.gettimeofday () -. t0));
                ("simulations", Emc_obs.Json.Int ctx.measure.Measure.simulations) ]
            "%s: done in %.1fs (%d simulations so far)" w.name
            (Unix.gettimeofday () -. t0)
            ctx.measure.Measure.simulations;
          d)

let model_of d technique = List.assoc technique d.models

let rbf_model d = model_of d Modeling.Rbf

(** The training design re-labelled with the energy response. The
    simulator memoizes all responses of a run, so after {!prepare} this
    costs zero additional simulations — it only re-reads the cache at the
    same design points. *)
let energy_train ctx d =
  let ys =
    Measure.respond_coded_many ~response:Measure.Energy ctx.measure d.workload
      ~variant:Workload.Train d.train.Dataset.x
  in
  Dataset.create (Array.map Array.copy d.train.Dataset.x) ys

(* ------------------------------------------------------------------ *)
(* Tables 1/2 and 5: parameter listings                                 *)

let print_parameters () =
  Printf.printf "== Tables 1 & 2: modeled parameters ==\n";
  Array.iteri
    (fun i (s : Params.spec) ->
      Printf.printf "  #%-2d %-22s levels=%-3d range=[%g, %g]%s\n" (i + 1) s.Params.name
        (Array.length s.Params.levels) s.Params.levels.(0)
        s.Params.levels.(Array.length s.Params.levels - 1)
        (if s.Params.log2 then " (log2)" else ""))
    Params.all_specs;
  Printf.printf "\n"

let configs =
  [ ("constrained", Emc_sim.Config.constrained); ("typical", Emc_sim.Config.typical);
    ("aggressive", Emc_sim.Config.aggressive) ]

let print_table5 () =
  Printf.printf "== Table 5: target microarchitectural configurations ==\n";
  List.iter
    (fun (name, c) -> Printf.printf "  %-12s %s\n" name (Emc_sim.Config.to_string c))
    configs;
  Printf.printf "\n"

(* ------------------------------------------------------------------ *)
(* Table 3: prediction error of the three techniques                    *)

type table3_row = { bench : string; linear_err : float; mars_err : float; rbf_err : float }

let table3 ctx =
  Printf.printf "== Table 3: average %% prediction error on %d-point test designs ==\n"
    ctx.scale.test_n;
  Printf.printf "  %-22s %10s %10s %10s\n" "Benchmark-Input" "Linear" "MARS" "RBF-RT";
  let rows =
    List.map
      (fun w ->
        let d = prepare ctx w in
        let err t = Metrics.mape (model_of d t).Model.predict d.test in
        let row =
          { bench = w.Workload.name; linear_err = err Modeling.Linear;
            mars_err = err Modeling.Mars; rbf_err = err Modeling.Rbf }
        in
        Printf.printf "  %-22s %10.2f %10.2f %10.2f\n%!" row.bench row.linear_err row.mars_err
          row.rbf_err;
        row)
      Registry.all
  in
  let avg f = Stats.mean (Array.of_list (List.map f rows)) in
  Printf.printf "  %-22s %10.2f %10.2f %10.2f\n\n" "Average" (avg (fun r -> r.linear_err))
    (avg (fun r -> r.mars_err))
    (avg (fun r -> r.rbf_err));
  rows

(* ------------------------------------------------------------------ *)
(* Figure 5: model error vs training set size                          *)

type fig5_point = { n : int; mean_err : float; std_err : float }

let fig5 ctx =
  Printf.printf "== Figure 5: RBF model error vs training set size (mean ± sigma over %d reps) ==\n"
    ctx.scale.fig5_reps;
  let out =
    List.map
      (fun w ->
        let d = prepare ctx w in
        let series =
          List.map
            (fun n ->
              let errs =
                Array.init ctx.scale.fig5_reps (fun _ ->
                    let sub = Dataset.sample ctx.rng d.train n in
                    let m = Modeling.fit Modeling.Rbf sub in
                    Metrics.mape m.Model.predict d.test)
              in
              { n; mean_err = Stats.mean errs; std_err = Stats.sample_stddev errs })
            ctx.scale.fig5_sizes
        in
        Printf.printf "  %-14s %s\n%!" (short_name w)
          (String.concat "  "
             (List.map (fun p -> Printf.sprintf "n=%d: %.1f±%.1f" p.n p.mean_err p.std_err) series));
        (w.Workload.name, series))
      Registry.all
  in
  Printf.printf "\n";
  out

(* ------------------------------------------------------------------ *)
(* Figure 6: actual vs predicted scatter for art, vortex, mcf          *)

let fig6 ?(benchmarks = [ "art"; "vortex"; "mcf" ]) ctx =
  Printf.printf "== Figure 6: actual vs RBF-predicted execution time (test points) ==\n";
  let out =
    List.map
      (fun name ->
        let w = Registry.find name in
        let d = prepare ctx w in
        let m = rbf_model d in
        let pairs =
          Array.mapi (fun i x -> (d.test.Dataset.y.(i), m.Model.predict x)) d.test.Dataset.x
        in
        let corr =
          Stats.correlation (Array.map fst pairs) (Array.map snd pairs)
        in
        Printf.printf "  %-12s correlation=%.4f (n=%d); first points (actual, predicted):\n"
          name corr (Array.length pairs);
        Array.iteri
          (fun i (a, p) ->
            if i < 8 then Printf.printf "     %12.0f %12.0f  (%+.1f%%)\n" a p ((p -. a) /. a *. 100.))
          pairs;
        (name, pairs, corr))
      benchmarks
  in
  Printf.printf "\n";
  out

(* ------------------------------------------------------------------ *)
(* Table 4: significant parameters/interactions from the MARS models    *)

let table4 ?(top = 14) ctx =
  Printf.printf
    "== Table 4: key parameter/interaction coefficients from the MARS models ==\n\
    \   (one-half the change in cycles from low to high setting; negative = improves)\n";
  let names = Params.names Params.all_specs in
  let out =
    List.map
      (fun w ->
        let d = prepare ctx w in
        let m = model_of d Modeling.Mars in
        let dims = Params.n_all in
        let scale_ref = Effects.constant m.Model.predict ~dims in
        let effects = Effects.top_effects m.Model.predict ~dims ~names in
        let significant =
          List.filteri (fun i _ -> i < top)
            (List.filter (fun (_, e) -> Float.abs e > Float.abs scale_ref *. 0.002) effects)
        in
        Printf.printf "  %s (constant %.3g):\n" w.Workload.name scale_ref;
        List.iter (fun (n, e) -> Printf.printf "     %-40s %+.4g\n" n e) significant;
        (w.Workload.name, scale_ref, significant))
      Registry.all
  in
  Printf.printf "\n";
  out

(* ------------------------------------------------------------------ *)
(* Table 6 + Figures 7, Table 7: model-based search                     *)

type search_row = {
  sbench : string;
  config : string;
  prescribed : Emc_opt.Flags.t;
  predicted_cycles : float;
}

let table6 ctx =
  Printf.printf
    "== Table 6: optimization settings prescribed by model-based search (RBF models) ==\n\
    \   flags as constrained/typical/aggressive per parameter\n";
  let out =
    List.map
      (fun w ->
        let d = prepare ctx w in
        let m = rbf_model d in
        let per_config =
          List.map
            (fun (cname, march) ->
              let r =
                Searcher.search ~params:ctx.scale.ga ~rng:(Rng.split ctx.rng) ~model:m ~march ()
              in
              { sbench = w.Workload.name; config = cname; prescribed = r.Searcher.flags;
                predicted_cycles = r.Searcher.predicted_cycles })
            configs
        in
        let f (r : search_row) = Params.of_flags r.prescribed in
        let cols = List.map f per_config in
        let cell i =
          String.concat "/"
            (List.map (fun c -> Printf.sprintf "%g" c.(i)) cols)
        in
        Printf.printf "  %-14s %s\n%!" (short_name w)
          (String.concat " "
             (List.map (fun i -> cell i) (List.init Params.n_compiler Fun.id)));
        (w.Workload.name, per_config))
      Registry.all
  in
  Printf.printf "  %-14s (parameter order: %s)\n\n" "legend"
    (String.concat ", " (Array.to_list (Params.names Params.compiler_specs)));
  out

type fig7_row = {
  fbench : string;
  fconfig : string;
  o3_speedup : float;  (** measured -O3 speedup over -O2, % *)
  predicted_speedup : float;  (** model-predicted speedup of GA settings over -O2, % *)
  actual_speedup : float;  (** measured speedup of GA settings over -O2, % *)
}

let coded_of flags march = Params.code Params.all_specs (Params.raw_of flags march)

let fig7 ctx (table6_out : (string * search_row list) list) =
  Printf.printf "== Figure 7: predicted and actual speedup over -O2 at prescribed settings ==\n";
  Printf.printf "  %-12s %-12s %12s %12s %12s\n" "bench" "config" "O3-speedup%" "predicted%"
    "actual%";
  let out =
    List.concat_map
      (fun (wname, rows) ->
        let w = Registry.find wname in
        let d = prepare ctx w in
        let m = rbf_model d in
        (* the 3 measurements per row are independent: fan them out in one
           batch per workload *)
        let pairs =
          Array.of_list
            (List.concat_map
               (fun (r : search_row) ->
                 let march = List.assoc r.config configs in
                 [ (Emc_opt.Flags.o2, march); (Emc_opt.Flags.o3, march);
                   (r.prescribed, march) ])
               rows)
        in
        let meas = Measure.cycles_many ctx.measure w ~variant:Workload.Train pairs in
        List.mapi
          (fun i (r : search_row) ->
            let march = List.assoc r.config configs in
            let o2 = meas.(3 * i) and o3 = meas.((3 * i) + 1) and best = meas.((3 * i) + 2) in
            let pred_o2 = m.Model.predict (coded_of Emc_opt.Flags.o2 march) in
            let pred_best = m.Model.predict (coded_of r.prescribed march) in
            let pct a b = (a /. b -. 1.0) *. 100.0 in
            let row =
              { fbench = wname; fconfig = r.config; o3_speedup = pct o2 o3;
                predicted_speedup = pct pred_o2 pred_best; actual_speedup = pct o2 best }
            in
            Printf.printf "  %-12s %-12s %12.2f %12.2f %12.2f\n%!" (short_name w) r.config
              row.o3_speedup row.predicted_speedup row.actual_speedup;
            row)
          rows)
      table6_out
  in
  List.iter
    (fun (cname, _) ->
      let rows = List.filter (fun r -> r.fconfig = cname) out in
      let avg f = Stats.mean (Array.of_list (List.map f rows)) in
      Printf.printf "  %-12s %-12s %12.2f %12.2f %12.2f\n" "average" cname
        (avg (fun r -> r.o3_speedup))
        (avg (fun r -> r.predicted_speedup))
        (avg (fun r -> r.actual_speedup)))
    configs;
  Printf.printf "\n";
  out

type table7_row = { tbench : string; tconfig : string; ref_speedup : float }

let table7 ctx (table6_out : (string * search_row list) list) =
  Printf.printf
    "== Table 7: profile-guided scenario — settings from train input, speedup on ref input ==\n";
  (* columns come from the configs list itself, so adding or reordering a
     target configuration cannot silently misalign the table *)
  Printf.printf "  %-12s" "bench";
  List.iter (fun (cname, _) -> Printf.printf " %12s" cname) configs;
  Printf.printf "\n";
  let out =
    List.map
      (fun (wname, rows) ->
        let w = Registry.find wname in
        let pairs =
          Array.of_list
            (List.concat_map
               (fun (r : search_row) ->
                 let march = List.assoc r.config configs in
                 [ (Emc_opt.Flags.o2, march); (r.prescribed, march) ])
               rows)
        in
        let meas = Measure.cycles_many ctx.measure w ~variant:Workload.Ref pairs in
        let per =
          List.mapi
            (fun i (r : search_row) ->
              let o2 = meas.(2 * i) and best = meas.((2 * i) + 1) in
              { tbench = wname; tconfig = r.config; ref_speedup = (o2 /. best -. 1.0) *. 100.0 })
            rows
        in
        Printf.printf "  %-12s" (short_name w);
        List.iter
          (fun (cname, _) ->
            match List.find_opt (fun row -> row.tconfig = cname) per with
            | Some row -> Printf.printf " %12.2f" row.ref_speedup
            | None -> Printf.printf " %12s" "-")
          configs;
        Printf.printf "\n%!";
        per)
      table6_out
  in
  let flat = List.concat out in
  List.iter
    (fun (cname, _) ->
      let rows = List.filter (fun r -> r.tconfig = cname) flat in
      Printf.printf "  average %-12s %.2f%%\n" cname
        (Stats.mean (Array.of_list (List.map (fun r -> r.ref_speedup) rows))))
    configs;
  Printf.printf "\n";
  out

(* ------------------------------------------------------------------ *)
(* Figure 3: art, unroll factor x I-cache size; linear inadequacy       *)

type fig3_cell = { unroll : int; icache_kb : int; cycles : float }

let fig3 ctx =
  Printf.printf
    "== Figure 3: art execution time vs max-unroll-times and I-cache size ==\n";
  let w = Registry.find "art" in
  let unrolls = [ 1; 2; 4; 6; 8; 10; 12; 16 ] in
  let icaches = [ 8; 32; 128 ] in
  let grid = List.concat_map (fun ic -> List.map (fun u -> (u, ic)) unrolls) icaches in
  let pairs =
    Array.of_list
      (List.map
         (fun (u, ic) ->
           (* aggressive inlining + unrolling so code size actually tracks
              the unroll factor, as in the paper's gcc binaries *)
           let flags =
             if u <= 1 then Emc_opt.Flags.o3
             else { Emc_opt.Flags.o3 with unroll_loops = true; max_unroll_times = u;
                    max_unrolled_insns = 300; max_inline_insns_auto = 150;
                    inline_unit_growth = 75 }
           in
           (flags, { Emc_sim.Config.typical with icache_kb = ic }))
         grid)
  in
  let meas = Measure.cycles_many ctx.measure w ~variant:Workload.Train pairs in
  let cells =
    List.mapi (fun i (u, ic) -> { unroll = u; icache_kb = ic; cycles = meas.(i) }) grid
  in
  List.iter
    (fun ic ->
      Printf.printf "  icache=%3dKB:" ic;
      List.iter
        (fun cell -> if cell.icache_kb = ic then Printf.printf " u%d=%.0f" cell.unroll cell.cycles)
        cells;
      Printf.printf "\n%!")
    icaches;
  (* linear model on the 8KB series, as in the figure *)
  let series8 = List.filter (fun c -> c.icache_kb = 8) cells in
  let xs = Array.of_list (List.map (fun c -> [| float_of_int c.unroll |]) series8) in
  let ys = Array.of_list (List.map (fun c -> c.cycles) series8) in
  let lin = Linear.fit ~interactions:false (Dataset.create xs ys) in
  Printf.printf "  linear fit (8KB):";
  List.iter
    (fun u -> Printf.printf " u%d=%.0f" u (lin.Model.predict [| float_of_int u |]))
    unrolls;
  Printf.printf "\n   (a straight line cannot capture the improve-then-degrade shape)\n\n";
  cells
