open Emc_util

(** The modeled parameter space: the paper's Table 1 (14 compiler flags and
    heuristics) followed by Table 2 (11 microarchitectural parameters) — 25
    predictor variables in all. Power-of-two parameters are log2-transformed
    before the affine map onto the coded [-1,1] range (the "*" rows of
    Table 2); everything is snapped back onto its admissible levels when
    decoding. *)

type spec = {
  name : string;
  levels : float array;  (** admissible raw values, ascending *)
  log2 : bool;  (** log-transform before coding *)
}

let flag name = { name; levels = [| 0.0; 1.0 |]; log2 = false }

let steps lo hi n =
  Array.init n (fun i -> lo +. ((hi -. lo) *. float_of_int i /. float_of_int (n - 1)))

let pow2s lo n = Array.init n (fun i -> lo *. (2.0 ** float_of_int i))

(* Table 1 *)
let compiler_specs =
  [|
    flag "inline-functions";          (* 1 *)
    flag "unroll-loops";              (* 2 *)
    flag "schedule-insns2";           (* 3 *)
    flag "loop-optimize";             (* 4 *)
    flag "gcse";                      (* 5 *)
    flag "strength-reduce";           (* 6 *)
    flag "omit-frame-pointer";        (* 7 *)
    flag "reorder-blocks";            (* 8 *)
    flag "prefetch-loop-arrays";      (* 9 *)
    { name = "max-inline-insns"; levels = steps 50.0 150.0 11; log2 = false };   (* 10 *)
    { name = "inline-unit-growth"; levels = steps 25.0 75.0 11; log2 = false };  (* 11 *)
    { name = "inline-call-cost"; levels = steps 12.0 20.0 9; log2 = false };     (* 12 *)
    { name = "max-unroll-times"; levels = steps 4.0 12.0 9; log2 = false };      (* 13 *)
    { name = "max-unrolled-insns"; levels = steps 100.0 300.0 21; log2 = false };(* 14 *)
  |]

(* Table 2 *)
let march_specs =
  [|
    { name = "issue-width"; levels = [| 2.0; 4.0 |]; log2 = true };              (* 15 *)
    { name = "bpred-size"; levels = pow2s 512.0 5; log2 = true };                (* 16 *)
    { name = "ruu-size"; levels = pow2s 16.0 4; log2 = true };                   (* 17 *)
    { name = "il1-size"; levels = pow2s 8.0 5; log2 = true };                    (* 18, KB *)
    { name = "dl1-size"; levels = pow2s 8.0 5; log2 = true };                    (* 19, KB *)
    { name = "dl1-assoc"; levels = [| 1.0; 2.0 |]; log2 = false };               (* 20 *)
    { name = "dl1-latency"; levels = steps 1.0 3.0 3; log2 = false };            (* 21 *)
    { name = "ul2-size"; levels = pow2s 256.0 6; log2 = true };                  (* 22, KB *)
    { name = "ul2-assoc"; levels = pow2s 1.0 4; log2 = true };                   (* 23 *)
    { name = "ul2-latency"; levels = steps 6.0 16.0 11; log2 = false };          (* 24 *)
    { name = "memory-latency"; levels = steps 50.0 150.0 21; log2 = false };     (* 25 *)
  |]

let all_specs = Array.append compiler_specs march_specs

let n_compiler = Array.length compiler_specs
let n_march = Array.length march_specs
let n_all = n_compiler + n_march

let names specs = Array.map (fun s -> s.name) specs

(* ---------------- coding ---------------- *)

let transform s v = if s.log2 then Transform.log2 v else v

let code_one s v =
  let lo = transform s s.levels.(0) and hi = transform s s.levels.(Array.length s.levels - 1) in
  if hi = lo then 0.0 else Transform.to_unit ~lo ~hi (transform s v)

let decode_one s u =
  let lo = transform s s.levels.(0) and hi = transform s s.levels.(Array.length s.levels - 1) in
  let raw = Transform.of_unit ~lo ~hi u in
  let raw = if s.log2 then 2.0 ** raw else raw in
  Transform.round_to_levels ~levels:s.levels raw

let code specs raw = Array.mapi (fun i v -> code_one specs.(i) v) raw
let decode specs coded = Array.mapi (fun i u -> decode_one specs.(i) u) coded

(** Coded admissible levels per dimension — the DoE/GA grid. *)
let coded_levels specs = Array.map (fun s -> Array.map (code_one s) s.levels) specs

let space_all = { Emc_doe.Doe.names = names all_specs; levels = coded_levels all_specs }
let space_compiler = { Emc_doe.Doe.names = names compiler_specs; levels = coded_levels compiler_specs }

(* ---------------- conversions ---------------- *)

let to_flags (raw : float array) : Emc_opt.Flags.t =
  let b i = raw.(i) >= 0.5 in
  let v i = int_of_float (Float.round raw.(i)) in
  {
    Emc_opt.Flags.inline_functions = b 0;
    unroll_loops = b 1;
    schedule_insns2 = b 2;
    loop_optimize = b 3;
    gcse = b 4;
    strength_reduce = b 5;
    omit_frame_pointer = b 6;
    reorder_blocks = b 7;
    prefetch_loop_arrays = b 8;
    max_inline_insns_auto = v 9;
    inline_unit_growth = v 10;
    inline_call_cost = v 11;
    max_unroll_times = v 12;
    max_unrolled_insns = v 13;
  }

let of_flags (f : Emc_opt.Flags.t) : float array =
  let b v = if v then 1.0 else 0.0 in
  [|
    b f.inline_functions; b f.unroll_loops; b f.schedule_insns2; b f.loop_optimize; b f.gcse;
    b f.strength_reduce; b f.omit_frame_pointer; b f.reorder_blocks; b f.prefetch_loop_arrays;
    float_of_int f.max_inline_insns_auto; float_of_int f.inline_unit_growth;
    float_of_int f.inline_call_cost; float_of_int f.max_unroll_times;
    float_of_int f.max_unrolled_insns;
  |]

let to_march (raw : float array) : Emc_sim.Config.t =
  let v i = int_of_float (Float.round raw.(n_compiler + i)) in
  {
    Emc_sim.Config.issue_width = v 0;
    bpred_size = v 1;
    ruu_size = v 2;
    icache_kb = v 3;
    dcache_kb = v 4;
    dcache_assoc = v 5;
    dcache_lat = v 6;
    l2_kb = v 7;
    l2_assoc = v 8;
    l2_lat = v 9;
    mem_lat = v 10;
  }

let of_march (c : Emc_sim.Config.t) : float array =
  [|
    float_of_int c.issue_width; float_of_int c.bpred_size; float_of_int c.ruu_size;
    float_of_int c.icache_kb; float_of_int c.dcache_kb; float_of_int c.dcache_assoc;
    float_of_int c.dcache_lat; float_of_int c.l2_kb; float_of_int c.l2_assoc;
    float_of_int c.l2_lat; float_of_int c.mem_lat;
  |]

(** Raw 25-vector from a flags/march pair. *)
let raw_of (flags : Emc_opt.Flags.t) (march : Emc_sim.Config.t) =
  Array.append (of_flags flags) (of_march march)

(** Split a raw 25-vector back into flags and march. *)
let split_raw (raw : float array) = (to_flags raw, to_march raw)

(** Snap a coded point onto admissible levels and return (flags, march). *)
let configs_of_coded (coded : float array) =
  let raw = decode all_specs coded in
  split_raw raw
