open Emc_regress
module Json = Emc_obs.Json

(** Serializable model artifacts (see artifact.mli). *)

let current_version = 1

let format_name = "emc-model"

type t = {
  workload : string;
  technique : string;
  scale : string;
  seed : int;
  train_n : int;
  test_mape : float option;
  specs : Params.spec array;
  repr : Repr.t;
  n_params : int;
  terms : (string * float) list;
  extra : (string * Repr.t) list;
}

let dims a = Array.length a.specs

let of_model ~workload ~scale ~seed ~train_n ?test_mape ?(specs = Params.all_specs)
    ?(extra = []) (m : Model.t) =
  match m.Model.repr with
  | None ->
      Error
        (Printf.sprintf "model %S has no serializable representation; cannot make an artifact"
           m.Model.technique)
  | Some repr ->
      Ok
        { workload; technique = m.Model.technique; scale; seed; train_n; test_mape; specs;
          repr; n_params = m.Model.n_params; terms = m.Model.terms; extra }

let extra_repr a name = List.assoc_opt name a.extra

let model a : Model.t =
  {
    Model.technique = a.technique;
    predict = Repr.eval a.repr;
    n_params = a.n_params;
    terms = a.terms;
    repr = Some a.repr;
  }

let validate_point a x =
  if Array.length x <> dims a then
    Error (Printf.sprintf "expected %d coded values, got %d" (dims a) (Array.length x))
  else if not (Array.for_all Float.is_finite x) then Error "point contains a non-finite value"
  else Ok ()

let code_raw a raw =
  if Array.length raw <> dims a then
    Error (Printf.sprintf "expected %d raw values, got %d" (dims a) (Array.length raw))
  else Ok (Params.code a.specs raw)

(* ---------------- JSON ---------------- *)

let jfloat v = Json.Str (Printf.sprintf "%h" v)

let spec_to_json (s : Params.spec) =
  Json.Obj
    [ ("name", Json.Str s.Params.name);
      ("levels", Json.List (Array.to_list (Array.map jfloat s.Params.levels)));
      ("log2", Json.Bool s.Params.log2) ]

let to_json a =
  Json.Obj
    ([ ("format", Json.Str format_name);
      ("version", Json.Int current_version);
      ("workload", Json.Str a.workload);
      ("technique", Json.Str a.technique);
      ("scale", Json.Str a.scale);
      ("seed", Json.Int a.seed);
      ("train_n", Json.Int a.train_n);
      ("test_mape", (match a.test_mape with Some v -> Json.Float v | None -> Json.Null));
      ("params", Json.List (Array.to_list (Array.map spec_to_json a.specs)));
      ("n_params", Json.Int a.n_params);
      ("terms",
       Json.List
         (List.map (fun (n, c) -> Json.Obj [ ("term", Json.Str n); ("coef", jfloat c) ]) a.terms));
      ("repr", Repr.to_json a.repr) ]
    @
    (* Extra named responses are emitted only when present, so artifacts
       without them stay byte-identical to what older builds wrote. *)
    (match a.extra with
    | [] -> []
    | extra ->
        [ ("extra", Json.Obj (List.map (fun (name, r) -> (name, Repr.to_json r)) extra)) ]))

let ( let* ) = Result.bind

let field name j =
  match Json.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let as_str = function Json.Str s -> Ok s | _ -> Error "expected a string"

let as_int = function Json.Int i -> Ok i | _ -> Error "expected an int"

let as_bool = function Json.Bool b -> Ok b | _ -> Error "expected a bool"

let as_list = function Json.List l -> Ok l | _ -> Error "expected a list"

let as_float = function
  | Json.Float f -> Ok f
  | Json.Int i -> Ok (float_of_int i)
  | Json.Str s -> (
      match float_of_string_opt s with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "malformed float literal %S" s))
  | _ -> Error "expected a float"

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

let spec_of_json j =
  let* name = Result.bind (field "name" j) as_str in
  let* ll = Result.bind (field "levels" j) as_list in
  let* levels = map_result as_float ll in
  let* log2 = Result.bind (field "log2" j) as_bool in
  if levels = [] then Error (Printf.sprintf "parameter %S has no levels" name)
  else Ok { Params.name; levels = Array.of_list levels; log2 }

let term_of_json j =
  let* n = Result.bind (field "term" j) as_str in
  let* c = Result.bind (field "coef" j) as_float in
  Ok (n, c)

let of_json j =
  let* fmt =
    match Json.member "format" j with
    | Some (Json.Str s) -> Ok s
    | _ -> Error "not an emc model artifact (missing \"format\" header)"
  in
  let* () =
    if fmt = format_name then Ok ()
    else Error (Printf.sprintf "not an emc model artifact (format %S)" fmt)
  in
  let* version = Result.bind (field "version" j) as_int in
  let* () =
    if version = current_version then Ok ()
    else
      Error
        (Printf.sprintf "unsupported artifact format version %d (this build reads version %d)"
           version current_version)
  in
  let* workload = Result.bind (field "workload" j) as_str in
  let* technique = Result.bind (field "technique" j) as_str in
  let* scale = Result.bind (field "scale" j) as_str in
  let* seed = Result.bind (field "seed" j) as_int in
  let* train_n = Result.bind (field "train_n" j) as_int in
  let* test_mape =
    match Json.member "test_mape" j with
    | None | Some Json.Null -> Ok None
    | Some v -> Result.map Option.some (as_float v)
  in
  let* sl = Result.bind (field "params" j) as_list in
  let* specs = map_result spec_of_json sl in
  let* n_params = Result.bind (field "n_params" j) as_int in
  let* tl = Result.bind (field "terms" j) as_list in
  let* terms = map_result term_of_json tl in
  let* repr = Result.bind (field "repr" j) Repr.of_json in
  let* extra =
    match Json.member "extra" j with
    | None | Some Json.Null -> Ok []
    | Some (Json.Obj fields) ->
        map_result
          (fun (name, rj) ->
            match Repr.of_json rj with
            | Ok r -> Ok (name, r)
            | Error e -> Error (Printf.sprintf "extra response %S: %s" name e))
          fields
    | Some _ -> Error "expected an object for field \"extra\""
  in
  if specs = [] then Error "artifact has an empty parameter schema"
  else
    Ok
      { workload; technique; scale; seed; train_n; test_mape; specs = Array.of_list specs;
        repr; n_params; terms; extra }

let save a path =
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (Json.to_string (to_json a));
      Out_channel.output_char oc '\n')

let load path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error e -> Error e
  | s -> (
      match Json.parse s with
      | Error e -> Error (Printf.sprintf "%s: corrupt artifact JSON (%s)" path e)
      | Ok j -> ( match of_json j with Ok a -> Ok a | Error e -> Error (path ^ ": " ^ e)))
