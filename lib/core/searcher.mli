(** Model-based search for platform-specific optimization settings (paper
    §6.3): freeze the 11 microarchitectural parameters at the target
    platform's configuration and search the 14 compiler parameters using
    the empirical model as a zero-cost fitness oracle.

    "When the program is installed on a specific platform, the empirical
    model could be parametrized with the platform's configuration and used
    to search for the optimal optimization flags and heuristic settings." *)

type result = {
  flags : Emc_opt.Flags.t;  (** the prescribed settings *)
  raw : float array;  (** the same, as raw compiler parameter values *)
  predicted_cycles : float;  (** the model's prediction at the best point *)
}

val coded_march : Emc_sim.Config.t -> float array
(** The frozen microarchitectural half of the coded design point. *)

val guarded : (float array -> float) -> float array -> float
(** Fitness wrapper: non-physical model outputs (NaN or <= 0 cycles, which
    unconstrained regressions can produce far from their training data) are
    treated as maximally unfit instead of optimal. *)

val search :
  ?params:Emc_search.Ga.params ->
  rng:Emc_util.Rng.t ->
  model:Emc_regress.Model.t ->
  march:Emc_sim.Config.t ->
  unit ->
  result
(** The paper's genetic-algorithm search. *)

val search_random :
  rng:Emc_util.Rng.t ->
  model:Emc_regress.Model.t ->
  march:Emc_sim.Config.t ->
  evals:int ->
  unit ->
  result
(** Random-search baseline (ablation). *)

val search_hill_climb :
  rng:Emc_util.Rng.t ->
  model:Emc_regress.Model.t ->
  march:Emc_sim.Config.t ->
  restarts:int ->
  unit ->
  result
(** Hill-climbing baseline (ablation). *)

(** {2 Multi-objective search}

    The same compiler-parameter space, searched for the cycles × energy
    trade-off frontier with {!Emc_search.Pareto} instead of a single
    scalarized objective. *)

type pareto_point = {
  p_flags : Emc_opt.Flags.t;
  p_raw : float array;  (** raw compiler parameter values *)
  p_cycles : float;  (** predicted cycles at this point *)
  p_energy : float;  (** predicted energy (nJ) at this point *)
}

val search_pareto :
  ?params:Emc_search.Ga.params ->
  rng:Emc_util.Rng.t ->
  cycles_model:Emc_regress.Model.t ->
  energy_model:Emc_regress.Model.t ->
  march:Emc_sim.Config.t ->
  unit ->
  pareto_point list
(** Non-dominated front over (predicted cycles, predicted energy), both
    minimized, with the microarchitectural half frozen at [march]. Both
    predictions go through {!guarded}, so non-physical model outputs
    cannot dominate. Deterministic for a given [rng] state; the front
    comes back deduplicated and sorted by objectives (see
    {!Emc_search.Pareto.optimize}). *)

val pareto_to_json : seed:int -> evaluations:int -> pareto_point list -> Emc_obs.Json.t
(** The one JSON rendering of a front, shared by [emc pareto --json] and
    the daemon's [/pareto] endpoint so the two are byte-identical:
    [{front; size; evaluations; seed}] with each front point carrying
    raw flag values, the rendered flag string and both predictions. *)
