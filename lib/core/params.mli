(** The modeled parameter space: the paper's Table 1 (14 compiler flags and
    heuristics) followed by Table 2 (11 microarchitectural parameters) — 25
    predictor variables. Power-of-two parameters are log2-transformed before
    the affine map onto the coded [-1,1] range (Table 2's "*" rows), and
    decoding snaps back onto the admissible levels. *)

type spec = {
  name : string;
  levels : float array;  (** admissible raw values, ascending *)
  log2 : bool;  (** log-transform before coding *)
}

val compiler_specs : spec array
(** Table 1, in order: the 9 binary flags then the 5 numeric heuristics. *)

val march_specs : spec array
(** Table 2, in order (#15–#25). *)

val all_specs : spec array
(** [compiler_specs] followed by [march_specs]. *)

val n_compiler : int
(** 14 *)

val n_march : int
(** 11 *)

val n_all : int
(** 25 *)

val names : spec array -> string array

(** {2 Coding} *)

val code_one : spec -> float -> float
(** Raw value to coded [-1,1]. *)

val decode_one : spec -> float -> float
(** Coded value back to the nearest admissible raw level. *)

val code : spec array -> float array -> float array
val decode : spec array -> float array -> float array

val coded_levels : spec array -> float array array
(** The coded grid per dimension — what DoE and the GA enumerate. *)

val space_all : Emc_doe.Doe.space
(** All 25 dimensions (model building). *)

val space_compiler : Emc_doe.Doe.space
(** The 14 compiler dimensions (model-based search with march frozen). *)

(** {2 Conversions to concrete configurations} *)

val to_flags : float array -> Emc_opt.Flags.t
(** First 14 raw values to a compiler configuration. *)

val of_flags : Emc_opt.Flags.t -> float array

val to_march : float array -> Emc_sim.Config.t
(** Raw 25-vector's microarchitectural half to a simulator configuration. *)

val of_march : Emc_sim.Config.t -> float array

val raw_of : Emc_opt.Flags.t -> Emc_sim.Config.t -> float array
(** Full raw 25-vector from a flags/march pair. *)

val split_raw : float array -> Emc_opt.Flags.t * Emc_sim.Config.t

val configs_of_coded : float array -> Emc_opt.Flags.t * Emc_sim.Config.t
(** Decode (snapping to levels) and split a coded design point. *)
