(** Model-based search for platform-specific optimization settings (paper
    §6.3): freeze the 11 microarchitectural parameters at the target
    platform's configuration, then run a genetic algorithm over the 14
    compiler parameters using the empirical model as a zero-cost fitness
    oracle. Returns the prescribed flags plus the model's predicted
    cycles. *)

type result = {
  flags : Emc_opt.Flags.t;
  raw : float array;  (** prescribed raw compiler parameter values *)
  predicted_cycles : float;
}

let coded_march (march : Emc_sim.Config.t) =
  let raw = Array.append (Array.make Params.n_compiler 0.0) (Params.of_march march) in
  let coded = Params.code Params.all_specs raw in
  Array.sub coded Params.n_compiler Params.n_march

(* Model predictions are unconstrained regressions: far from the training
   data they can go non-physical (<= 0 cycles). The search must not reward
   such points — treat them as maximally unfit rather than optimal. *)
let guarded predict x =
  let p = predict x in
  if Float.is_nan p || p <= 0.0 then Float.max_float else p

let search ?(params = Emc_search.Ga.default_params) ~rng ~(model : Emc_regress.Model.t)
    ~(march : Emc_sim.Config.t) () =
  let march_coded = coded_march march in
  let problem = { Emc_search.Ga.levels = Params.space_compiler.Emc_doe.Doe.levels } in
  let fitness genes = guarded model.Emc_regress.Model.predict (Array.append genes march_coded) in
  let best, fit = Emc_search.Ga.optimize ~params rng problem ~fitness in
  let raw = Params.decode Params.compiler_specs best in
  { flags = Params.to_flags raw; raw; predicted_cycles = fit }

(** Ablation baselines over the same search space. *)
let search_random ~rng ~model ~march ~evals () =
  let march_coded = coded_march march in
  let problem = { Emc_search.Ga.levels = Params.space_compiler.Emc_doe.Doe.levels } in
  let fitness genes = guarded model.Emc_regress.Model.predict (Array.append genes march_coded) in
  let best, fit = Emc_search.Ga.random_search rng problem ~fitness ~evals in
  let raw = Params.decode Params.compiler_specs best in
  { flags = Params.to_flags raw; raw; predicted_cycles = fit }

let search_hill_climb ~rng ~model ~march ~restarts () =
  let march_coded = coded_march march in
  let problem = { Emc_search.Ga.levels = Params.space_compiler.Emc_doe.Doe.levels } in
  let fitness genes = guarded model.Emc_regress.Model.predict (Array.append genes march_coded) in
  let best, fit = Emc_search.Ga.hill_climb rng problem ~fitness ~restarts in
  let raw = Params.decode Params.compiler_specs best in
  { flags = Params.to_flags raw; raw; predicted_cycles = fit }

(* ---------------- multi-objective (cycles × energy) ---------------- *)

type pareto_point = {
  p_flags : Emc_opt.Flags.t;
  p_raw : float array;
  p_cycles : float;
  p_energy : float;
}

let search_pareto ?(params = Emc_search.Ga.default_params) ~rng
    ~(cycles_model : Emc_regress.Model.t) ~(energy_model : Emc_regress.Model.t)
    ~(march : Emc_sim.Config.t) () : pareto_point list =
  let march_coded = coded_march march in
  let problem = { Emc_search.Ga.levels = Params.space_compiler.Emc_doe.Doe.levels } in
  let fitness genes =
    let x = Array.append genes march_coded in
    [| guarded cycles_model.Emc_regress.Model.predict x;
       guarded energy_model.Emc_regress.Model.predict x |]
  in
  let front = Emc_search.Pareto.optimize ~params rng problem ~fitness in
  Array.to_list front
  |> List.map (fun (p : Emc_search.Pareto.point) ->
         let raw = Params.decode Params.compiler_specs p.Emc_search.Pareto.genome in
         { p_flags = Params.to_flags raw; p_raw = raw;
           p_cycles = p.Emc_search.Pareto.objectives.(0);
           p_energy = p.Emc_search.Pareto.objectives.(1) })

(* One JSON rendering shared by [emc pareto --json] and the daemon's
   /pareto endpoint: byte-identical output is the acceptance contract for
   served-vs-in-process runs. *)
let pareto_to_json ~seed ~evaluations (front : pareto_point list) : Emc_obs.Json.t =
  let module Json = Emc_obs.Json in
  let names = Array.to_list (Array.map (fun s -> s.Params.name) Params.compiler_specs) in
  let point p =
    Json.Obj
      [ ("flags",
         Json.Obj (List.map2 (fun n v -> (n, Json.Float v)) names (Array.to_list p.p_raw)));
        ("flags_string", Json.Str (Emc_opt.Flags.to_string p.p_flags));
        ("predicted_cycles", Json.Float p.p_cycles);
        ("predicted_energy", Json.Float p.p_energy) ]
  in
  Json.Obj
    [ ("front", Json.List (List.map point front));
      ("size", Json.Int (List.length front));
      ("evaluations", Json.Int evaluations);
      ("seed", Json.Int seed) ]
