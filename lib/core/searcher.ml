(** Model-based search for platform-specific optimization settings (paper
    §6.3): freeze the 11 microarchitectural parameters at the target
    platform's configuration, then run a genetic algorithm over the 14
    compiler parameters using the empirical model as a zero-cost fitness
    oracle. Returns the prescribed flags plus the model's predicted
    cycles. *)

type result = {
  flags : Emc_opt.Flags.t;
  raw : float array;  (** prescribed raw compiler parameter values *)
  predicted_cycles : float;
}

let coded_march (march : Emc_sim.Config.t) =
  let raw = Array.append (Array.make Params.n_compiler 0.0) (Params.of_march march) in
  let coded = Params.code Params.all_specs raw in
  Array.sub coded Params.n_compiler Params.n_march

(* Model predictions are unconstrained regressions: far from the training
   data they can go non-physical (<= 0 cycles). The search must not reward
   such points — treat them as maximally unfit rather than optimal. *)
let guarded predict x =
  let p = predict x in
  if Float.is_nan p || p <= 0.0 then Float.max_float else p

let search ?(params = Emc_search.Ga.default_params) ~rng ~(model : Emc_regress.Model.t)
    ~(march : Emc_sim.Config.t) () =
  let march_coded = coded_march march in
  let problem = { Emc_search.Ga.levels = Params.space_compiler.Emc_doe.Doe.levels } in
  let fitness genes = guarded model.Emc_regress.Model.predict (Array.append genes march_coded) in
  let best, fit = Emc_search.Ga.optimize ~params rng problem ~fitness in
  let raw = Params.decode Params.compiler_specs best in
  { flags = Params.to_flags raw; raw; predicted_cycles = fit }

(** Ablation baselines over the same search space. *)
let search_random ~rng ~model ~march ~evals () =
  let march_coded = coded_march march in
  let problem = { Emc_search.Ga.levels = Params.space_compiler.Emc_doe.Doe.levels } in
  let fitness genes = guarded model.Emc_regress.Model.predict (Array.append genes march_coded) in
  let best, fit = Emc_search.Ga.random_search rng problem ~fitness ~evals in
  let raw = Params.decode Params.compiler_specs best in
  { flags = Params.to_flags raw; raw; predicted_cycles = fit }

let search_hill_climb ~rng ~model ~march ~restarts () =
  let march_coded = coded_march march in
  let problem = { Emc_search.Ga.levels = Params.space_compiler.Emc_doe.Doe.levels } in
  let fitness genes = guarded model.Emc_regress.Model.predict (Array.append genes march_coded) in
  let best, fit = Emc_search.Ga.hill_climb rng problem ~fitness ~restarts in
  let raw = Params.decode Params.compiler_specs best in
  { flags = Params.to_flags raw; raw; predicted_cycles = fit }
