(** Model artifacts: a fitted model's serializable representation bundled
    with everything needed to use it outside the process that trained it —
    the parameter schema (names, admissible levels, log2 coding) for input
    validation and raw→coded conversion, the workload name, the training
    provenance (seed, protocol scale, design size, held-out test MAPE) and a
    format-version header.

    [emc train --out model.json] writes one; [emc predict / rank / search
    --model] and the {!Emc_serve} daemon consume it. Loading is total: a
    missing file, truncated or corrupt JSON, a wrong format header, an
    unsupported version or a malformed repr all come back as [Error] with a
    one-line diagnostic — never an exception. *)

type t = {
  workload : string;
  technique : string;  (** e.g. "rbf-rt(multiquadric)" *)
  scale : string;  (** protocol scale name the training ran at *)
  seed : int;
  train_n : int;  (** training design size *)
  test_mape : float option;  (** held-out test error recorded at training time *)
  specs : Params.spec array;  (** parameter schema, in design-point order *)
  repr : Emc_regress.Repr.t;
  n_params : int;
  terms : (string * float) list;
  extra : (string * Emc_regress.Repr.t) list;
      (** Additional named response models over the same parameter schema
          (e.g. ["energy"], used by the Pareto search). Empty for
          single-response artifacts; the JSON field is omitted when empty,
          so such artifacts are byte-identical to pre-[extra] ones. *)
}

val current_version : int
(** The artifact format version this build reads and writes. *)

val dims : t -> int
(** Arity of a coded design point for this artifact. *)

val of_model :
  workload:string ->
  scale:string ->
  seed:int ->
  train_n:int ->
  ?test_mape:float ->
  ?specs:Params.spec array ->
  ?extra:(string * Emc_regress.Repr.t) list ->
  Emc_regress.Model.t ->
  (t, string) result
(** [Error] when the model carries no serializable repr (stubs, trees).
    [specs] defaults to {!Params.all_specs} (the 25-parameter space);
    [extra] (named additional response reprs) defaults to []. *)

val extra_repr : t -> string -> Emc_regress.Repr.t option
(** Look up an additional named response model, e.g.
    [extra_repr a "energy"]. *)

val model : t -> Emc_regress.Model.t
(** Reconstruct the model. Its [predict] is bit-identical to the fitted
    model the artifact was made from. *)

val validate_point : t -> float array -> (unit, string) result
(** Check a coded point's arity against the schema and that every value is
    finite. *)

val code_raw : t -> float array -> (float array, string) result
(** Map raw parameter values onto the coded [-1,1] space using the
    artifact's own schema. *)

val to_json : t -> Emc_obs.Json.t
val of_json : Emc_obs.Json.t -> (t, string) result

val save : t -> string -> unit
(** Write the artifact as a single JSON document. *)

val load : string -> (t, string) result
(** Read + parse + structure/version check. *)
