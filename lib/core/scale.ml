(** Experiment protocol scales.

    The paper's full protocol (400-point D-optimal training designs, 100-point
    test designs, full SPEC inputs) takes hours of simulation even with
    SMARTS. The [quick] protocol exercises exactly the same code paths with
    smaller designs and scaled-down workload inputs so that the complete
    bench harness regenerates every table and figure in minutes; [full]
    matches the paper's design sizes. Select via the EMC_SCALE environment
    variable ("quick" (default) | "full" | "paper"). *)

type t = {
  name : string;
  train_n : int;  (** training design size (paper: 400) *)
  test_n : int;  (** independent test design size (paper: 100) *)
  workload_scale : float;  (** input size multiplier *)
  smarts : Emc_sim.Smarts.params option;  (** None = fully detailed simulation *)
  fig5_sizes : int list;  (** training sizes for the learning curves *)
  fig5_reps : int;  (** repetitions per size for error variance *)
  ga : Emc_search.Ga.params;
  doe_sweeps : int;
  doe_cand_factor : int;
  jobs : int;  (** measurement fan-out workers; 1 = sequential *)
}

(* Same seed must give the same datasets at any [jobs], so the presets
   default to sequential and the worker count comes only from the
   environment (of_env) or explicit CLI flags. *)
let jobs_of_env () = Emc_par.Par.default_jobs ()

let quick =
  {
    name = "quick";
    train_n = 110;
    test_n = 36;
    workload_scale = 0.25;
    smarts =
      Some { Emc_sim.Smarts.unit_size = 1000; warmup = 1000; interval = 8; target_ci = 0.05;
             max_refinements = 1 };
    fig5_sizes = [ 25; 50; 75; 110 ];
    fig5_reps = 3;
    ga = { Emc_search.Ga.default_params with pop_size = 50; generations = 40 };
    doe_sweeps = 2;
    doe_cand_factor = 5;
    jobs = 1;
  }

let full =
  {
    name = "full";
    train_n = 400;
    test_n = 100;
    workload_scale = 1.0;
    smarts =
      Some { Emc_sim.Smarts.unit_size = 1000; warmup = 2000; interval = 10; target_ci = 0.01;
             max_refinements = 2 };
    fig5_sizes = [ 50; 100; 150; 200; 300; 400 ];
    fig5_reps = 5;
    ga = Emc_search.Ga.default_params;
    doe_sweeps = 3;
    doe_cand_factor = 5;
    jobs = 1;
  }

(** Intermediate validation scale: half the paper's design sizes on
    half-size inputs — a ~half-hour run that narrows the gap between the
    quick protocol and the paper's. *)
let medium =
  {
    name = "medium";
    train_n = 220;
    test_n = 60;
    workload_scale = 0.5;
    smarts =
      Some { Emc_sim.Smarts.unit_size = 1000; warmup = 2000; interval = 10; target_ci = 0.03;
             max_refinements = 1 };
    fig5_sizes = [ 50; 100; 150; 220 ];
    fig5_reps = 3;
    ga = Emc_search.Ga.default_params;
    doe_sweeps = 2;
    doe_cand_factor = 5;
    jobs = 1;
  }

(** Smoke-test scale: tiny designs, heavily scaled-down inputs. Models are
    too starved to be accurate here — it exists to exercise every code path
    in seconds (used by CI-style runs and debugging). *)
let tiny =
  {
    quick with
    name = "tiny";
    train_n = 36;
    test_n = 12;
    workload_scale = 0.08;
    fig5_sizes = [ 12; 24; 36 ];
    fig5_reps = 2;
    ga = { quick.ga with pop_size = 24; generations = 12 };
  }

let of_env () =
  let base =
    match Sys.getenv_opt "EMC_SCALE" with
    | Some ("full" | "paper") -> full
    | Some "medium" -> medium
    | Some "tiny" -> tiny
    | Some "quick" | None -> quick
    | Some other ->
        Emc_obs.Log.warn ~src:"scale"
          ~fields:[ ("value", Emc_obs.Json.Str other) ]
          "EMC_SCALE=%s not recognized; using quick" other;
        quick
  in
  { base with jobs = jobs_of_env () }
