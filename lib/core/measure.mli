(** The measurement substrate of the paper's Figure-1 loop: compile the
    workload at a design point's compiler settings (with the machine
    description matching its issue width, as the paper did by building one
    gcc per functional-unit configuration), simulate it on the design
    point's microarchitecture, and return the response. Binaries and results
    are memoized — designs repeat corner points and searches revisit
    configurations.

    Two scaling mechanisms sit on top of the memo tables:

    - a {b persistent result cache} (JSONL file, [?cache_file] or the
      EMC_CACHE environment variable): loaded at {!create}, appended on
      every fresh simulation, so a warm re-run of the same experiment
      performs zero simulations;
    - {b parallel fan-out} of measurement batches ({!respond_many},
      {!cycles_many}, {!cycles_coded_many}) across [scale.jobs] forked
      workers. Results are merged back into the parent memo in input order,
      and the simulator is deterministic, so datasets are bit-identical to
      a sequential run at any worker count. *)

type t = {
  scale : Scale.t;
  binaries : (string, Emc_isa.Isa.program) Hashtbl.t;
  results : (string, float) Hashtbl.t;
  cache : out_channel option;  (** append side of the persistent cache *)
  mutable simulations : int;  (** simulator runs actually executed *)
  mutable compiles : int;  (** distinct binaries built *)
  mutable binary_hits : int;  (** compile requests served from the memo *)
  mutable result_hits : int;  (** measurements served from the memo *)
  mutable preloaded : int;  (** results loaded from the persistent cache *)
}

val create : ?cache_file:string -> Scale.t -> t
(** [create ?cache_file scale]: when [cache_file] (default: the EMC_CACHE
    environment variable) is set, existing cached results are loaded into
    the memo and every future simulation is appended to the file. Malformed
    cache lines are skipped with a warning. *)

val compile :
  t -> Emc_workloads.Workload.t -> Emc_opt.Flags.t -> issue_width:int -> Emc_isa.Isa.program
(** Memoized compilation of a workload at given flags/machine width. *)

val setup_func : (string * Emc_workloads.Workload.data) list -> Emc_sim.Func.t -> unit
(** Write a workload's input arrays into a functional simulator's memory. *)

(** Which system response to model: the paper's evaluation uses execution
    time; §2.2 notes power and code size fit the same machinery. One
    simulation produces all three (they are memoized together). *)
type response = Cycles | Energy | CodeSize

val response_name : response -> string

val respond :
  ?response:response ->
  t ->
  Emc_workloads.Workload.t ->
  variant:Emc_workloads.Workload.variant ->
  Emc_opt.Flags.t ->
  Emc_sim.Config.t ->
  float

val respond_many :
  ?response:response ->
  t ->
  Emc_workloads.Workload.t ->
  variant:Emc_workloads.Workload.variant ->
  (Emc_opt.Flags.t * Emc_sim.Config.t) array ->
  float array
(** Measure a batch of independent configurations, fanning cache misses out
    across [scale.jobs] forked workers (deduplicated first — designs repeat
    corner points). Equivalent to mapping {!respond} over the batch: same
    values bit-for-bit, same memo/cache contents, same counter totals; with
    [jobs = 1] it literally is that map. *)

val cycles :
  t ->
  Emc_workloads.Workload.t ->
  variant:Emc_workloads.Workload.variant ->
  Emc_opt.Flags.t ->
  Emc_sim.Config.t ->
  float
(** [respond ~response:Cycles]. *)

val cycles_many :
  t ->
  Emc_workloads.Workload.t ->
  variant:Emc_workloads.Workload.variant ->
  (Emc_opt.Flags.t * Emc_sim.Config.t) array ->
  float array
(** [respond_many ~response:Cycles]. *)

val cycles_coded :
  t -> Emc_workloads.Workload.t -> variant:Emc_workloads.Workload.variant -> float array -> float
(** Measure at a coded 25-dimensional design point (decoded and snapped to
    the parameter grid first). *)

val respond_coded :
  ?response:response ->
  t ->
  Emc_workloads.Workload.t ->
  variant:Emc_workloads.Workload.variant ->
  float array ->
  float

val respond_coded_many :
  ?response:response ->
  t ->
  Emc_workloads.Workload.t ->
  variant:Emc_workloads.Workload.variant ->
  float array array ->
  float array
(** {!respond_many} over coded design points. *)

val cycles_coded_many :
  t ->
  Emc_workloads.Workload.t ->
  variant:Emc_workloads.Workload.variant ->
  float array array ->
  float array
(** {!cycles_many} over coded design points — the fan-out entry used by
    [Modeling.build_dataset]. *)
