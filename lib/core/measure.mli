(** The measurement substrate of the paper's Figure-1 loop: compile the
    workload at a design point's compiler settings (with the machine
    description matching its issue width, as the paper did by building one
    gcc per functional-unit configuration), simulate it on the design
    point's microarchitecture, and return the response. Binaries and results
    are memoized — designs repeat corner points and searches revisit
    configurations.

    Two scaling mechanisms sit on top of the memo tables:

    - a {b persistent result cache} (JSONL file, [?cache_file] or the
      EMC_CACHE environment variable): loaded at {!create}, appended on
      every fresh simulation, so a warm re-run of the same experiment
      performs zero simulations;
    - {b parallel fan-out} of measurement batches ({!respond_many},
      {!cycles_many}, {!cycles_coded_many}) across [scale.jobs] forked
      workers. Results are merged back into the parent memo in input order,
      and the simulator is deterministic, so datasets are bit-identical to
      a sequential run at any worker count. *)

(** All three responses of one simulated design point — what crosses the
    wire between a fleet coordinator and its workers. *)
type triple = { t_cycles : float; t_energy : float; t_code_size : float }

type t = {
  scale : Scale.t;
  binaries : (string, Emc_isa.Isa.program) Hashtbl.t;
  results : (string, float) Hashtbl.t;
  cache : out_channel option;  (** append side of the persistent cache *)
  journal : out_channel option;  (** append side of the per-run journal *)
  mutable simulations : int;  (** simulator runs actually executed *)
  mutable compiles : int;  (** distinct binaries built *)
  mutable binary_hits : int;  (** compile requests served from the memo *)
  mutable result_hits : int;  (** measurements served from the memo *)
  mutable preloaded : int;  (** results loaded from the persistent cache *)
  mutable remote : remote option;
      (** when set (see {!set_remote} and [Fleet.attach]), batch cache
          misses are resolved by this function instead of local simulation *)
}

(** A remote batch resolver: given the deduplicated cache misses of a
    {!respond_many} batch, return all three responses per point, in input
    order. Values must be exactly what local simulation would produce —
    the fleet coordinator guarantees this by running the same simulator on
    the workers and moving results as bit-exact hex floats. *)
and remote =
  Emc_workloads.Workload.t ->
  variant:Emc_workloads.Workload.variant ->
  (Emc_opt.Flags.t * Emc_sim.Config.t) array ->
  triple array

val create : ?cache_file:string -> ?journal_file:string -> Scale.t -> t
(** [create ?cache_file ?journal_file scale]: when [cache_file] (default:
    the EMC_CACHE environment variable) is set, existing cached results
    are loaded into the memo and every future simulation is appended to
    the file. [journal_file] behaves identically (load then append) and is
    the per-run resume journal: a re-run with the same journal preloads
    every completed measurement and performs zero re-simulations.
    Malformed lines — including a trailing line torn by a killed run — are
    skipped with a warning, and a torn tail is newline-terminated before
    anything is appended so no record is ever glued onto it. *)

val set_remote : t -> remote -> unit
(** Route future {!respond_many} cache misses through a remote resolver
    (installed by [Fleet.attach]). Counters still advance exactly as the
    local path's would; a remotely resolved point counts as a simulation. *)

val preload : t -> (string * float) list -> int
(** Inject externally fetched results (a fleet store's hits) into the
    memo, skipping keys already present; returns the number added. Memo
    only — not appended to the cache or journal, which record this
    process's own measurements. Counts into [preloaded] /
    [measure.cache_preloaded]. *)

val triple_of_result : Emc_sim.Smarts.result -> triple

val compile :
  t -> Emc_workloads.Workload.t -> Emc_opt.Flags.t -> issue_width:int -> Emc_isa.Isa.program
(** Memoized compilation of a workload at given flags/machine width. *)

val setup_func : (string * Emc_workloads.Workload.data) list -> Emc_sim.Func.t -> unit
(** Write a workload's input arrays into a functional simulator's memory. *)

(** Which system response to model: the paper's evaluation uses execution
    time; §2.2 notes power and code size fit the same machinery. One
    simulation produces all three (they are memoized together). *)
type response = Cycles | Energy | CodeSize

val response_name : response -> string

val result_key :
  response ->
  Emc_workloads.Workload.t ->
  variant:Emc_workloads.Workload.variant ->
  Emc_opt.Flags.t ->
  Emc_sim.Config.t ->
  string
(** The content address of one measurement —
    [response|workload|variant|flags|march] — used by the memo, the JSONL
    cache, the run journal, and the fleet's shared result store. *)

val triple_keys :
  Emc_workloads.Workload.t ->
  variant:Emc_workloads.Workload.variant ->
  Emc_opt.Flags.t * Emc_sim.Config.t ->
  string * string * string
(** The (cycles, energy, code-size) content addresses of one design point,
    in the fixed order {!store_triple} persists them. The batched key
    pre-filter hook: the fleet coordinator maps it over a work array to
    look every key up in the shared store with a single RPC and strip
    fully-stored points from dispatch. *)

val cache_line : string -> float -> string
(** One JSONL cache record [{"k":KEY,"v":"0x...p..."}] (bit-exact hex
    float) — the line format shared by [--cache] files, run journals, and
    the fleet store's persistence. *)

val cache_load : (string, float) Hashtbl.t -> string -> int * int
(** Load a JSONL cache/journal/store file into a table, returning
    [(loaded, skipped)]. Schema header lines are skipped silently;
    malformed lines — including a torn trailing line — count as skipped. *)

val cache_open_append : string -> out_channel
(** Open the append side of a JSONL cache-format file (creating it if
    missing), first newline-terminating any torn trailing line so appended
    records never glue onto it — used by the fleet store's persistence. *)

val respond :
  ?response:response ->
  t ->
  Emc_workloads.Workload.t ->
  variant:Emc_workloads.Workload.variant ->
  Emc_opt.Flags.t ->
  Emc_sim.Config.t ->
  float

val respond_many :
  ?response:response ->
  t ->
  Emc_workloads.Workload.t ->
  variant:Emc_workloads.Workload.variant ->
  (Emc_opt.Flags.t * Emc_sim.Config.t) array ->
  float array
(** Measure a batch of independent configurations, fanning cache misses out
    across [scale.jobs] forked workers (deduplicated first — designs repeat
    corner points). Equivalent to mapping {!respond} over the batch: same
    values bit-for-bit, same memo/cache contents, same counter totals; with
    [jobs = 1] it literally is that map. *)

val cycles :
  t ->
  Emc_workloads.Workload.t ->
  variant:Emc_workloads.Workload.variant ->
  Emc_opt.Flags.t ->
  Emc_sim.Config.t ->
  float
(** [respond ~response:Cycles]. *)

val cycles_many :
  t ->
  Emc_workloads.Workload.t ->
  variant:Emc_workloads.Workload.variant ->
  (Emc_opt.Flags.t * Emc_sim.Config.t) array ->
  float array
(** [respond_many ~response:Cycles]. *)

val cycles_coded :
  t -> Emc_workloads.Workload.t -> variant:Emc_workloads.Workload.variant -> float array -> float
(** Measure at a coded 25-dimensional design point (decoded and snapped to
    the parameter grid first). *)

val respond_coded :
  ?response:response ->
  t ->
  Emc_workloads.Workload.t ->
  variant:Emc_workloads.Workload.variant ->
  float array ->
  float

val respond_coded_many :
  ?response:response ->
  t ->
  Emc_workloads.Workload.t ->
  variant:Emc_workloads.Workload.variant ->
  float array array ->
  float array
(** {!respond_many} over coded design points. *)

val cycles_coded_many :
  t ->
  Emc_workloads.Workload.t ->
  variant:Emc_workloads.Workload.variant ->
  float array array ->
  float array
(** {!cycles_many} over coded design points — the fan-out entry used by
    [Modeling.build_dataset]. *)

(** {2 Cache maintenance ([emc cache])} *)

type cache_stats = {
  cs_lines : int;  (** non-blank lines in the file *)
  cs_entries : int;  (** well-formed key/value entries *)
  cs_unique : int;  (** distinct keys *)
  cs_duplicates : int;  (** entries repeating an earlier key *)
  cs_headers : int;  (** schema header lines (run journals) *)
  cs_malformed : int;  (** unparseable lines, the torn tail included *)
  cs_torn : bool;  (** the file ends mid-line (torn trailing write) *)
  cs_top_duplicates : (string * int) list;
      (** keys appearing more than once, by occurrence count descending
          (ties broken by key), capped at ten — the hit-key report *)
}

val cache_stats : string -> cache_stats
(** One read-only pass over a JSONL cache/journal/store file. A missing
    file reports as empty. *)

val cache_compact : string -> cache_stats
(** Rewrite the file in place (tmp + rename) keeping schema headers and
    the first occurrence of each key byte-verbatim, dropping duplicates,
    malformed lines, and any torn trailing write. Returns the
    pre-compaction stats. *)
