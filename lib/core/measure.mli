(** The measurement substrate of the paper's Figure-1 loop: compile the
    workload at a design point's compiler settings (with the machine
    description matching its issue width, as the paper did by building one
    gcc per functional-unit configuration), simulate it on the design
    point's microarchitecture, and return the response. Binaries and results
    are memoized — designs repeat corner points and searches revisit
    configurations. *)

type t = {
  scale : Scale.t;
  binaries : (string, Emc_isa.Isa.program) Hashtbl.t;
  results : (string, float) Hashtbl.t;
  mutable simulations : int;  (** simulator runs actually executed *)
  mutable compiles : int;  (** distinct binaries built *)
  mutable binary_hits : int;  (** compile requests served from the memo *)
  mutable result_hits : int;  (** measurements served from the memo *)
}

val create : Scale.t -> t

val compile :
  t -> Emc_workloads.Workload.t -> Emc_opt.Flags.t -> issue_width:int -> Emc_isa.Isa.program
(** Memoized compilation of a workload at given flags/machine width. *)

val setup_func : (string * Emc_workloads.Workload.data) list -> Emc_sim.Func.t -> unit
(** Write a workload's input arrays into a functional simulator's memory. *)

(** Which system response to model: the paper's evaluation uses execution
    time; §2.2 notes power and code size fit the same machinery. One
    simulation produces all three (they are memoized together). *)
type response = Cycles | Energy | CodeSize

val response_name : response -> string

val respond :
  ?response:response ->
  t ->
  Emc_workloads.Workload.t ->
  variant:Emc_workloads.Workload.variant ->
  Emc_opt.Flags.t ->
  Emc_sim.Config.t ->
  float

val cycles :
  t ->
  Emc_workloads.Workload.t ->
  variant:Emc_workloads.Workload.variant ->
  Emc_opt.Flags.t ->
  Emc_sim.Config.t ->
  float
(** [respond ~response:Cycles]. *)

val cycles_coded :
  t -> Emc_workloads.Workload.t -> variant:Emc_workloads.Workload.variant -> float array -> float
(** Measure at a coded 25-dimensional design point (decoded and snapped to
    the parameter grid first). *)

val respond_coded :
  ?response:response ->
  t ->
  Emc_workloads.Workload.t ->
  variant:Emc_workloads.Workload.variant ->
  float array ->
  float
