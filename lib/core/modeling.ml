open Emc_regress

(** Empirical model construction (the iterative process of the paper's
    Figure 1): select design points (D-optimal), measure the response at
    each, fit a model, estimate its error on independent data, and — in
    {!iterate} — augment the design and refit until the error target or the
    budget is reached. *)

type technique = Linear | Mars | Rbf

let technique_name = function Linear -> "linear" | Mars -> "MARS" | Rbf -> "RBF-RT"

let all_techniques = [ Linear; Mars; Rbf ]

(* Regression models extrapolate without physical constraints: far outside
   the training data (the paper's "edges of the design space", where it
   reports its own models lose accuracy) a multiquadric RBF can predict
   near-zero or negative cycles. Since the response is whole-program
   execution time, predictions are clamped to a widened envelope of the
   observed responses — identical behaviour on/near the data, bounded
   nonsense off it. *)
let clamp_margin = 2.0

let clamp_to_response (d : Dataset.t) (m : Model.t) : Model.t =
  let lo = Emc_util.Stats.min d.Dataset.y /. clamp_margin in
  let hi = Emc_util.Stats.max d.Dataset.y *. clamp_margin in
  match m.Model.repr with
  | Some body ->
      (* keep the clamp inside the serializable repr so that artifacts
         reproduce the clamped model, not the raw regression *)
      let repr = Repr.Clamp { lo; hi; body } in
      { m with Model.predict = Repr.eval repr; repr = Some repr }
  | None ->
      { m with Model.predict = (fun x -> Float.max lo (Float.min hi (m.Model.predict x))) }

let m_fits = Emc_obs.Metrics.counter "model.fits"

let fit_seconds_hist technique =
  Emc_obs.Metrics.histogram ("model.fit_seconds." ^ technique_name technique)

let fit ?(names = Params.names Params.all_specs) technique (d : Dataset.t) : Model.t =
  Emc_obs.Trace.with_span ~cat:"model"
    ~args:(fun () ->
      [ ("technique", Emc_obs.Json.Str (technique_name technique));
        ("points", Emc_obs.Json.Int (Array.length d.Dataset.x)) ])
    "model.fit"
    (fun () ->
      let t0 = Unix.gettimeofday () in
      let m =
        clamp_to_response d
          (match technique with
          | Linear -> Linear.fit ~interactions:true ~names d
          | Mars -> Mars.fit ~names d
          | Rbf -> Rbf.fit ~kernel:Rbf.Multiquadric d)
      in
      let dt = Unix.gettimeofday () -. t0 in
      Emc_obs.Metrics.incr m_fits;
      Emc_obs.Metrics.observe (fit_seconds_hist technique) dt;
      Emc_obs.Log.debug ~src:"model"
        ~fields:
          [ ("technique", Emc_obs.Json.Str (technique_name technique));
            ("points", Emc_obs.Json.Int (Array.length d.Dataset.x));
            ("params", Emc_obs.Json.Int m.Model.n_params);
            ("seconds", Emc_obs.Json.Float dt) ]
        "fit %s on %d points: %d basis terms/centers in %.3fs"
        (technique_name technique)
        (Array.length d.Dataset.x) m.Model.n_params dt;
      m)

(** Measure the response at every point of a coded design. Design points are
    independent, so misses fan out across [measure.scale.jobs] workers; at
    any worker count the dataset is bit-identical to a sequential run. *)
let build_dataset (m : Measure.t) w ~variant (points : float array array) : Dataset.t =
  let y = Measure.cycles_coded_many m w ~variant points in
  Dataset.create (Array.map Array.copy points) y

(** One Figure-1 iteration cycle: grow the training design by [step] points
    — a Fedorov exchange over fresh candidates with the already-measured
    rows held fixed ({!Emc_doe.Doe.augment}), so each round's design is
    D-optimal as a whole, exploiting the extensibility of D-optimal designs
    — then refit and re-evaluate, until the test MAPE reaches [target_error]
    or [max_n] is hit. Returns the final model plus the error trajectory. *)
let iterate ?(step = 50) ?(target_error = 5.0) ?(max_n = 400) ~rng ~measure ~workload ~variant
    ~technique ~test () =
  let space = Params.space_all in
  let trajectory = ref [] in
  let rec go n design =
    let data = build_dataset measure workload ~variant design in
    let model = fit technique data in
    let err = Metrics.mape model.Model.predict test in
    trajectory := (n, err) :: !trajectory;
    if err <= target_error || n >= max_n then (model, List.rev !trajectory)
    else
      let extra = Emc_doe.Doe.augment rng space ~design ~n_extra:step in
      go (n + step) (Array.append design extra)
  in
  let initial = Emc_doe.Doe.generate rng space ~n:step in
  go step initial
