(** Experiment protocol scales. The full paper protocol (400-point training
    designs, 100-point test designs, full-size inputs) costs hours of
    simulation; [quick] exercises identical code paths in minutes and is the
    default; [tiny] is a seconds-scale smoke test whose models are too
    starved to be accurate. Selected via EMC_SCALE=tiny|quick|medium|full. *)

type t = {
  name : string;
  train_n : int;  (** training design size (paper: 400) *)
  test_n : int;  (** independent test design size (paper: 100) *)
  workload_scale : float;  (** input size multiplier *)
  smarts : Emc_sim.Smarts.params option;  (** [None] = fully detailed simulation *)
  fig5_sizes : int list;  (** training sizes for the Figure-5 learning curves *)
  fig5_reps : int;  (** repetitions per size for the error variance *)
  ga : Emc_search.Ga.params;
  doe_sweeps : int;  (** Fedorov exchange passes *)
  doe_cand_factor : int;  (** LHS candidates per design point *)
  jobs : int;  (** measurement fan-out workers; 1 = sequential (presets
                   always say 1 — parallelism is opt-in via EMC_JOBS or
                   [--jobs], and never changes the measured datasets) *)
}

val quick : t
val full : t
val medium : t
val tiny : t

val of_env : unit -> t
(** Reads EMC_SCALE; defaults to {!quick}, warns on unknown values. The
    [jobs] field is filled in from EMC_JOBS ({!jobs_of_env}). *)

val jobs_of_env : unit -> int
(** EMC_JOBS when it is a positive integer; 1 otherwise. *)
