(** Empirical model construction — the iterative process of the paper's
    Figure 1: select design points, measure the response at each, fit a
    model, estimate its error on independent data, and iterate with an
    augmented design until the accuracy target or budget is reached. *)

type technique = Linear | Mars | Rbf

val technique_name : technique -> string

val all_techniques : technique list
(** The paper's three families, in Table-3 column order. *)

val fit : ?names:string array -> technique -> Emc_regress.Dataset.t -> Emc_regress.Model.t
(** Fit one family. Predictions are clamped to a widened envelope of the
    training responses: identical behaviour on/near the data, bounded
    output in the extrapolation regions at the edge of the design space
    (where the paper reports its own models lose accuracy). *)

val build_dataset :
  Measure.t ->
  Emc_workloads.Workload.t ->
  variant:Emc_workloads.Workload.variant ->
  float array array ->
  Emc_regress.Dataset.t
(** Measure the response at every point of a coded design, fanning cache
    misses out across [measure.scale.jobs] forked workers. Bit-identical to
    the sequential result at any worker count. *)

val iterate :
  ?step:int ->
  ?target_error:float ->
  ?max_n:int ->
  rng:Emc_util.Rng.t ->
  measure:Measure.t ->
  workload:Emc_workloads.Workload.t ->
  variant:Emc_workloads.Workload.variant ->
  technique:technique ->
  test:Emc_regress.Dataset.t ->
  unit ->
  Emc_regress.Model.t * (int * float) list
(** The Figure-1 loop: grow the training design by [step] points per round —
    chosen by a Fedorov exchange with the already-measured rows held fixed,
    so the augmented design stays D-optimal as a whole — until the test MAPE
    reaches [target_error] or [max_n] points; returns the final model and
    the (size, error) trajectory. *)
