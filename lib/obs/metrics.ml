type counter = { cname : string; mutable count : int }
type gauge = { gname : string; mutable gval : float; mutable gset : bool }

type histogram = {
  hname : string;
  mutable data : float array;
  mutable len : int;
}

type metric = C of counter | G of gauge | H of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let register name make check =
  match Hashtbl.find_opt registry name with
  | Some m -> (
      match check m with
      | Some v -> v
      | None ->
          invalid_arg
            (Printf.sprintf "Metrics: %S already registered as a %s" name (kind_name m)))
  | None ->
      let m, v = make () in
      Hashtbl.replace registry name m;
      v

let counter name =
  register name
    (fun () ->
      let c = { cname = name; count = 0 } in
      (C c, c))
    (function C c -> Some c | _ -> None)

let incr ?(by = 1) c = c.count <- c.count + by
let add c n = c.count <- c.count + n
let value c = c.count

let gauge name =
  register name
    (fun () ->
      let g = { gname = name; gval = 0.0; gset = false } in
      (G g, g))
    (function G g -> Some g | _ -> None)

let set g v =
  g.gval <- v;
  g.gset <- true

let gauge_read g = if g.gset then Some g.gval else None

let histogram name =
  register name
    (fun () ->
      let h = { hname = name; data = [||]; len = 0 } in
      (H h, h))
    (function H h -> Some h | _ -> None)

let observe h v =
  if h.len = Array.length h.data then begin
    let grown = Array.make (Stdlib.max 16 (2 * h.len)) 0.0 in
    Array.blit h.data 0 grown 0 h.len;
    h.data <- grown
  end;
  h.data.(h.len) <- v;
  h.len <- h.len + 1

type hstats = {
  count : int;
  sum : float;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let histogram_stats h =
  if h.len = 0 then None
  else
    let xs = Array.sub h.data 0 h.len in
    let module S = Emc_util.Stats in
    Some
      {
        count = h.len;
        sum = S.sum xs;
        mean = S.mean xs;
        min = S.min xs;
        max = S.max xs;
        p50 = S.percentile xs 50.0;
        p90 = S.percentile xs 90.0;
        p99 = S.percentile xs 99.0;
      }

let counter_value name =
  match Hashtbl.find_opt registry name with Some (C c) -> Some c.count | _ -> None

let gauge_value name =
  match Hashtbl.find_opt registry name with Some (G g) -> gauge_read g | _ -> None

let stats_of name =
  match Hashtbl.find_opt registry name with Some (H h) -> histogram_stats h | _ -> None

let sorted_metrics () =
  let all = Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry [] in
  List.sort (fun (a, _) (b, _) -> String.compare a b) all

let dump_text () =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, m) ->
      match m with
      | C c -> Buffer.add_string buf (Printf.sprintf "counter    %-36s %d\n" name c.count)
      | G g ->
          Buffer.add_string buf
            (Printf.sprintf "gauge      %-36s %s\n" name
               (if g.gset then Printf.sprintf "%g" g.gval else "unset"))
      | H h -> (
          match histogram_stats h with
          | None -> Buffer.add_string buf (Printf.sprintf "histogram  %-36s empty\n" name)
          | Some s ->
              Buffer.add_string buf
                (Printf.sprintf
                   "histogram  %-36s count=%d mean=%g min=%g p50=%g p90=%g p99=%g max=%g\n" name
                   s.count s.mean s.min s.p50 s.p90 s.p99 s.max)))
    (sorted_metrics ());
  Buffer.contents buf

let to_json () =
  Json.Obj
    (List.map
       (fun (name, m) ->
         let v =
           match m with
           | C c -> Json.Int c.count
           | G g -> if g.gset then Json.Float g.gval else Json.Null
           | H h -> (
               match histogram_stats h with
               | None -> Json.Obj [ ("count", Json.Int 0) ]
               | Some s ->
                   Json.Obj
                     [
                       ("count", Json.Int s.count);
                       ("sum", Json.Float s.sum);
                       ("mean", Json.Float s.mean);
                       ("min", Json.Float s.min);
                       ("max", Json.Float s.max);
                       ("p50", Json.Float s.p50);
                       ("p90", Json.Float s.p90);
                       ("p99", Json.Float s.p99);
                     ])
         in
         (name, v))
       (sorted_metrics ()))

let reset () =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | C c -> c.count <- 0
      | G g -> g.gset <- false
      | H h -> h.len <- 0)
    registry
