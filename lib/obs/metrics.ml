type counter = { cname : string; mutable count : int }
type gauge = { gname : string; mutable gval : float; mutable gset : bool }

(* ---------------- log-scale bucketing ----------------

   Histograms keep a fixed array of log-spaced buckets instead of raw
   samples: constant memory for any sample count, O(1) observe, and
   bucket-wise mergeability across processes. Bucket i (1-based) covers
   [2^(min_exp + (i-1)/bpo), 2^(min_exp + i/bpo)); index 0 is the
   underflow bucket (values below 2^min_exp, including zero, negatives
   and NaN) and index n_core+1 the overflow bucket. *)

let buckets_per_octave = 32
let min_exp = -30 (* 2^-30 ~ 9.3e-10 *)
let max_exp = 50 (* 2^50  ~ 1.1e15 *)
let n_core = (max_exp - min_exp) * buckets_per_octave
let n_buckets = n_core + 2
let lo_bound = Float.ldexp 1.0 min_exp
let hi_bound = Float.ldexp 1.0 max_exp
let inv_ln2 = 1.0 /. Float.log 2.0

let bucket_of v =
  if not (v >= lo_bound) then 0
  else if v >= hi_bound then n_core + 1
  else begin
    let e =
      (Float.log v *. inv_ln2 -. float_of_int min_exp) *. float_of_int buckets_per_octave
    in
    let i = int_of_float e in
    1 + if i < 0 then 0 else if i >= n_core then n_core - 1 else i
  end

let bucket_upper i =
  if i <= 0 then lo_bound
  else if i > n_core then Float.infinity
  else
    Float.exp
      (Float.log 2.0
      *. (float_of_int min_exp +. (float_of_int i /. float_of_int buckets_per_octave)))

type histogram = {
  hname : string;
  hbuckets : int array;
  mutable hcount : int;
  mutable hsum : float;
  mutable hsum_c : float; (* Kahan compensation, so sums stay exact-ish *)
  mutable hmin : float;
  mutable hmax : float;
}

type metric = C of counter | G of gauge | H of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let register name make check =
  match Hashtbl.find_opt registry name with
  | Some m -> (
      match check m with
      | Some v -> v
      | None ->
          invalid_arg
            (Printf.sprintf "Metrics: %S already registered as a %s" name (kind_name m)))
  | None ->
      let m, v = make () in
      Hashtbl.replace registry name m;
      v

let counter name =
  register name
    (fun () ->
      let c = { cname = name; count = 0 } in
      (C c, c))
    (function C c -> Some c | _ -> None)

let incr ?(by = 1) c = c.count <- c.count + by
let add c n = c.count <- c.count + n
let value c = c.count

let gauge name =
  register name
    (fun () ->
      let g = { gname = name; gval = 0.0; gset = false } in
      (G g, g))
    (function G g -> Some g | _ -> None)

let set g v =
  g.gval <- v;
  g.gset <- true

let gauge_read g = if g.gset then Some g.gval else None

let histogram name =
  register name
    (fun () ->
      let h =
        {
          hname = name;
          hbuckets = Array.make n_buckets 0;
          hcount = 0;
          hsum = 0.0;
          hsum_c = 0.0;
          hmin = Float.infinity;
          hmax = Float.neg_infinity;
        }
      in
      (H h, h))
    (function H h -> Some h | _ -> None)

let observe h v =
  let i = bucket_of v in
  h.hbuckets.(i) <- h.hbuckets.(i) + 1;
  h.hcount <- h.hcount + 1;
  let y = v -. h.hsum_c in
  let t = h.hsum +. y in
  h.hsum_c <- (t -. h.hsum) -. y;
  h.hsum <- t;
  if v < h.hmin then h.hmin <- v;
  if v > h.hmax then h.hmax <- v

type hstats = {
  count : int;
  sum : float;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

(* Percentile over a cumulative walk of sparse (index, count) pairs:
   the upper bound of the bucket holding the rank-th sample, clamped to
   the exactly-tracked [min, max]. Accurate to one bucket width. *)
let percentile_sparse sparse total mn mx q =
  if total = 0 then Float.nan
  else begin
    let rank =
      let r = int_of_float (Float.ceil (q /. 100.0 *. float_of_int total)) in
      if r < 1 then 1 else if r > total then total else r
    in
    let rec go cum = function
      | [] -> mx
      | (i, c) :: rest ->
          let cum = cum + c in
          if cum >= rank then Float.min mx (Float.max mn (bucket_upper i)) else go cum rest
    in
    go 0 sparse
  end

let sparse_of_array a =
  let out = ref [] in
  for i = n_buckets - 1 downto 0 do
    if a.(i) > 0 then out := (i, a.(i)) :: !out
  done;
  !out

let stats_of_sparse sparse total sum mn mx =
  if total = 0 then None
  else
    let p q = percentile_sparse sparse total mn mx q in
    Some
      {
        count = total;
        sum;
        mean = sum /. float_of_int total;
        min = mn;
        max = mx;
        p50 = p 50.0;
        p90 = p 90.0;
        p99 = p 99.0;
      }

let histogram_stats h =
  stats_of_sparse (sparse_of_array h.hbuckets) h.hcount h.hsum h.hmin h.hmax

let histogram_percentile h q =
  if h.hcount = 0 then None
  else Some (percentile_sparse (sparse_of_array h.hbuckets) h.hcount h.hmin h.hmax q)

let counter_value name =
  match Hashtbl.find_opt registry name with Some (C c) -> Some c.count | _ -> None

let gauge_value name =
  match Hashtbl.find_opt registry name with Some (G g) -> gauge_read g | _ -> None

let stats_of name =
  match Hashtbl.find_opt registry name with Some (H h) -> histogram_stats h | _ -> None

let sorted_metrics () =
  let all = Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry [] in
  List.sort (fun (a, _) (b, _) -> String.compare a b) all

(* ---------------- snapshots: serialize + merge ---------------- *)

type hsnap = {
  s_count : int;
  s_sum : float;
  s_min : float; (* +inf when empty *)
  s_max : float; (* -inf when empty *)
  s_buckets : (int * int) list; (* sparse, ascending bucket index *)
}

type snapshot = {
  counters : (string * int) list; (* all sorted by name *)
  gauges : (string * float) list;
  hists : (string * hsnap) list;
}

let snapshot_empty = { counters = []; gauges = []; hists = [] }

let hsnap_of_histogram h =
  {
    s_count = h.hcount;
    s_sum = h.hsum;
    s_min = h.hmin;
    s_max = h.hmax;
    s_buckets = sparse_of_array h.hbuckets;
  }

let snapshot () =
  List.fold_right
    (fun (name, m) acc ->
      match m with
      | C c -> { acc with counters = (name, c.count) :: acc.counters }
      | G g -> if g.gset then { acc with gauges = (name, g.gval) :: acc.gauges } else acc
      | H h -> { acc with hists = (name, hsnap_of_histogram h) :: acc.hists })
    (sorted_metrics ()) snapshot_empty

let rec merge_sparse a b =
  match (a, b) with
  | [], x | x, [] -> x
  | (ia, ca) :: ta, (ib, cb) :: tb ->
      if ia = ib then (ia, ca + cb) :: merge_sparse ta tb
      else if ia < ib then (ia, ca) :: merge_sparse ta b
      else (ib, cb) :: merge_sparse a tb

let merge_hsnap a b =
  {
    s_count = a.s_count + b.s_count;
    s_sum = a.s_sum +. b.s_sum;
    s_min = Float.min a.s_min b.s_min;
    s_max = Float.max a.s_max b.s_max;
    s_buckets = merge_sparse a.s_buckets b.s_buckets;
  }

(* Merge two sorted assoc lists, combining values under equal names. *)
let rec merge_assoc combine a b =
  match (a, b) with
  | [], x | x, [] -> x
  | (na, va) :: ta, (nb, vb) :: tb ->
      let c = String.compare na nb in
      if c = 0 then (na, combine va vb) :: merge_assoc combine ta tb
      else if c < 0 then (na, va) :: merge_assoc combine ta b
      else (nb, vb) :: merge_assoc combine a tb

let merge a b =
  {
    counters = merge_assoc ( + ) a.counters b.counters;
    gauges = merge_assoc (fun _ r -> r) a.gauges b.gauges;
    hists = merge_assoc merge_hsnap a.hists b.hists;
  }

let snapshot_counters s = s.counters
let snapshot_gauges s = s.gauges
let snapshot_histograms s = s.hists

let hsnap_stats h = stats_of_sparse h.s_buckets h.s_count h.s_sum h.s_min h.s_max

let hsnap_percentile h q =
  if h.s_count = 0 then None
  else Some (percentile_sparse h.s_buckets h.s_count h.s_min h.s_max q)

let hsnap_cumulative h =
  let _, acc =
    List.fold_left
      (fun (cum, acc) (i, c) ->
        let cum = cum + c in
        (cum, (Float.min (bucket_upper i) h.s_max, cum) :: acc))
      (0, []) h.s_buckets
  in
  List.rev acc

let snapshot_to_json s =
  Json.Obj
    [
      ("schema", Json.Str "emc-metrics-snapshot/1");
      ("counters", Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) s.counters));
      ("gauges", Json.Obj (List.map (fun (n, v) -> (n, Json.Float v)) s.gauges));
      ( "histograms",
        Json.Obj
          (List.map
             (fun (n, h) ->
               ( n,
                 Json.Obj
                   ([ ("count", Json.Int h.s_count); ("sum", Json.Float h.s_sum) ]
                   @ (if h.s_count > 0 then
                        [ ("min", Json.Float h.s_min); ("max", Json.Float h.s_max) ]
                      else [])
                   @ [
                       ( "buckets",
                         Json.List
                           (List.map
                              (fun (i, c) -> Json.List [ Json.Int i; Json.Int c ])
                              h.s_buckets) );
                     ]) ))
             s.hists) );
    ]

let snapshot_of_json j =
  let ( let* ) r k = Result.bind r k in
  let obj name = function
    | Some (Json.Obj kvs) -> Ok kvs
    | _ -> Error (Printf.sprintf "snapshot: %S must be an object" name)
  in
  let num name = function
    | Json.Int i -> Ok (float_of_int i)
    | Json.Float f -> Ok f
    | Json.Null -> Ok Float.nan (* non-finite sums render as null *)
    | _ -> Error (Printf.sprintf "snapshot: %S must be a number" name)
  in
  match j with
  | Json.Obj kvs ->
      let* () =
        match List.assoc_opt "schema" kvs with
        | Some (Json.Str "emc-metrics-snapshot/1") -> Ok ()
        | _ -> Error "snapshot: missing or unsupported schema"
      in
      let* counters = obj "counters" (List.assoc_opt "counters" kvs) in
      let* gauges = obj "gauges" (List.assoc_opt "gauges" kvs) in
      let* hists = obj "histograms" (List.assoc_opt "histograms" kvs) in
      let* counters =
        List.fold_left
          (fun acc (n, v) ->
            let* acc = acc in
            match v with
            | Json.Int i -> Ok ((n, i) :: acc)
            | _ -> Error (Printf.sprintf "snapshot: counter %S must be an integer" n))
          (Ok []) counters
      in
      let* gauges =
        List.fold_left
          (fun acc (n, v) ->
            let* acc = acc in
            let* f = num n v in
            Ok ((n, f) :: acc))
          (Ok []) gauges
      in
      let* hists =
        List.fold_left
          (fun acc (n, v) ->
            let* acc = acc in
            let* fields = obj n (Some v) in
            let* count =
              match List.assoc_opt "count" fields with
              | Some (Json.Int c) when c >= 0 -> Ok c
              | _ -> Error (Printf.sprintf "snapshot: histogram %S lacks a count" n)
            in
            let* sum =
              match List.assoc_opt "sum" fields with
              | Some v -> num (n ^ ".sum") v
              | None -> Error (Printf.sprintf "snapshot: histogram %S lacks a sum" n)
            in
            let fnum key default =
              match List.assoc_opt key fields with
              | Some v -> num (n ^ "." ^ key) v
              | None -> Ok default
            in
            let* mn = fnum "min" Float.infinity in
            let* mx = fnum "max" Float.neg_infinity in
            let* buckets =
              match List.assoc_opt "buckets" fields with
              | Some (Json.List bs) ->
                  List.fold_left
                    (fun acc b ->
                      let* acc = acc in
                      match b with
                      | Json.List [ Json.Int i; Json.Int c ]
                        when i >= 0 && i < n_buckets && c > 0 ->
                          Ok ((i, c) :: acc)
                      | _ ->
                          Error
                            (Printf.sprintf "snapshot: histogram %S has a malformed bucket" n))
                    (Ok []) bs
              | _ -> Error (Printf.sprintf "snapshot: histogram %S lacks buckets" n)
            in
            let buckets = List.sort (fun (a, _) (b, _) -> compare a b) (List.rev buckets) in
            Ok ((n, { s_count = count; s_sum = sum; s_min = mn; s_max = mx; s_buckets = buckets })
               :: acc))
          (Ok []) hists
      in
      let sort l = List.sort (fun (a, _) (b, _) -> String.compare a b) l in
      Ok { counters = sort counters; gauges = sort gauges; hists = sort hists }
  | _ -> Error "snapshot: expected a JSON object"

(* ---------------- dumps ---------------- *)

let dump_text () =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, m) ->
      match m with
      | C c -> Buffer.add_string buf (Printf.sprintf "counter    %-36s %d\n" name c.count)
      | G g ->
          Buffer.add_string buf
            (Printf.sprintf "gauge      %-36s %s\n" name
               (if g.gset then Printf.sprintf "%g" g.gval else "unset"))
      | H h -> (
          match histogram_stats h with
          | None -> Buffer.add_string buf (Printf.sprintf "histogram  %-36s empty\n" name)
          | Some s ->
              Buffer.add_string buf
                (Printf.sprintf
                   "histogram  %-36s count=%d mean=%g min=%g p50=%g p90=%g p99=%g max=%g\n" name
                   s.count s.mean s.min s.p50 s.p90 s.p99 s.max)))
    (sorted_metrics ());
  Buffer.contents buf

let to_json () =
  Json.Obj
    (List.map
       (fun (name, m) ->
         let v =
           match m with
           | C c -> Json.Int c.count
           | G g -> if g.gset then Json.Float g.gval else Json.Null
           | H h -> (
               match histogram_stats h with
               | None -> Json.Obj [ ("count", Json.Int 0) ]
               | Some s ->
                   Json.Obj
                     [
                       ("count", Json.Int s.count);
                       ("sum", Json.Float s.sum);
                       ("mean", Json.Float s.mean);
                       ("min", Json.Float s.min);
                       ("max", Json.Float s.max);
                       ("p50", Json.Float s.p50);
                       ("p90", Json.Float s.p90);
                       ("p99", Json.Float s.p99);
                     ])
         in
         (name, v))
       (sorted_metrics ()))

let reset () =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | C c -> c.count <- 0
      | G g -> g.gset <- false
      | H h ->
          Array.fill h.hbuckets 0 n_buckets 0;
          h.hcount <- 0;
          h.hsum <- 0.0;
          h.hsum_c <- 0.0;
          h.hmin <- Float.infinity;
          h.hmax <- Float.neg_infinity)
    registry
