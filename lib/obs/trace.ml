type event = {
  name : string;
  cat : string;
  ph : string;
  ts : float;  (** microseconds since trace start *)
  dur : float;  (** microseconds; only meaningful for "X" events *)
  args : (string * Json.t) list;
}

let on = ref false
let path = ref ""
let t0 = ref 0.0
let events : event list ref = ref []
let at_exit_registered = ref false

let enabled () = !on

let now_us () = (Unix.gettimeofday () -. !t0) *. 1e6

let rec flush () =
  if !on then begin
    let evs = List.rev !events in
    let json_of_event e =
      Json.Obj
        ([
           ("name", Json.Str e.name);
           ("cat", Json.Str e.cat);
           ("ph", Json.Str e.ph);
           ("ts", Json.Float e.ts);
         ]
        @ (if e.ph = "X" then [ ("dur", Json.Float e.dur) ] else [])
        @ (if e.ph = "i" then [ ("s", Json.Str "t") ] else [])
        @ [ ("pid", Json.Int 1); ("tid", Json.Int 1) ]
        @ if e.args = [] then [] else [ ("args", Json.Obj e.args) ])
    in
    let doc =
      Json.Obj
        [
          ("traceEvents", Json.List (List.map json_of_event evs));
          ("displayTimeUnit", Json.Str "ms");
        ]
    in
    match open_out !path with
    | exception Sys_error msg ->
        Log.err ~src:"trace" "cannot write trace file: %s" msg;
        on := false
    | oc ->
        output_string oc (Json.to_string doc);
        output_char oc '\n';
        close_out oc
  end

and enable p =
  (* fail fast on an unwritable path: better a warning now than an
     uncaught Sys_error from the at_exit flush after the whole run *)
  match open_out p with
  | exception Sys_error msg ->
      Log.err ~src:"trace" "cannot open trace file: %s" msg
  | oc ->
      close_out oc;
      path := p;
      t0 := Unix.gettimeofday ();
      events := [];
      on := true;
      if not !at_exit_registered then begin
        at_exit_registered := true;
        at_exit flush
      end

let disable () =
  on := false;
  events := []

let push e = events := e :: !events

let with_span ?(cat = "emc") ?args name f =
  if not !on then f ()
  else begin
    let start = now_us () in
    let finish ok =
      let dur = now_us () -. start in
      let a = match args with Some g -> g () | None -> [] in
      let a = if ok then a else ("error", Json.Bool true) :: a in
      push { name; cat; ph = "X"; ts = start; dur; args = a }
    in
    match f () with
    | v ->
        finish true;
        v
    | exception e ->
        finish false;
        raise e
  end

let instant ?args name =
  if !on then
    push
      {
        name;
        cat = "emc";
        ph = "i";
        ts = now_us ();
        dur = 0.0;
        args = (match args with Some g -> g () | None -> []);
      }

let counter name series =
  if !on then
    push
      {
        name;
        cat = "emc";
        ph = "C";
        ts = now_us ();
        dur = 0.0;
        args = List.map (fun (k, v) -> (k, Json.Float v)) series;
      }

let () =
  match Sys.getenv_opt "EMC_TRACE" with
  | Some p when p <> "" -> enable p
  | _ -> ()
