(** Leveled, structured logging for the pipeline.

    Two sinks, both off by default:
    - human-readable lines on stderr, gated by a level ([EMC_LOG=debug|
      info|warn|error|quiet], default [warn] so misconfiguration warnings
      still surface but the normal path is silent);
    - a JSONL structured-event file ([EMC_LOG_FILE=<path>]), one JSON
      object per emitted event, for machine consumption.

    Formatting is printf-style and only happens when the level is enabled
    ([Printf.ikfprintf] otherwise), so disabled log statements cost a
    level comparison. *)

type level = Error | Warn | Info | Debug

val level_to_string : level -> string

val level_of_string : string -> level option
(** Accepts ["error"], ["warn"]/["warning"], ["info"], ["debug"], and
    ["quiet"]/["off"]/["silent"] (mapped to {!Error}); case-insensitive. *)

val set_level : level -> unit
val level : unit -> level
val enabled : level -> bool

val set_jsonl : string option -> unit
(** Point the structured sink at a file (append mode), or [None] to close
    it. Normally driven by [EMC_LOG_FILE]. *)

val logf :
  level -> src:string -> ?fields:(string * Json.t) list -> ('a, unit, string, unit) format4 -> 'a
(** [logf lvl ~src ~fields fmt ...] emits one event tagged with its source
    subsystem ([smarts], [prepare], [ga], ...) and optional structured
    fields. The stderr line shows elapsed process time, level, source,
    message and fields; the JSONL record carries the same data keyed. *)

val err :
  src:string -> ?fields:(string * Json.t) list -> ('a, unit, string, unit) format4 -> 'a

val warn :
  src:string -> ?fields:(string * Json.t) list -> ('a, unit, string, unit) format4 -> 'a

val info :
  src:string -> ?fields:(string * Json.t) list -> ('a, unit, string, unit) format4 -> 'a

val debug :
  src:string -> ?fields:(string * Json.t) list -> ('a, unit, string, unit) format4 -> 'a
