(** Minimal JSON values — the common currency of the observability layer
    (metric dumps, structured log lines, Chrome trace events).

    Deliberately tiny and dependency-free: an emitter plus a strict
    recursive-descent parser (used by the tests to check that every file
    the layer writes is well-formed). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_buffer : Buffer.t -> t -> unit

val to_string : t -> string
(** Compact (no whitespace) rendering. Non-finite floats become [null] —
    JSON has no encoding for them. *)

val parse : string -> (t, string) result
(** Strict parse of a complete document; trailing garbage is an error.
    Numbers without [.]/[e] parse as {!Int}, others as {!Float}. *)

val parse_exn : string -> t
(** Like {!parse}; raises [Failure] with the error message. *)

val member : string -> t -> t option
(** [member k j] is the value under key [k] when [j] is an [Obj]. *)

val hex : float -> t
(** The value as a [Str] holding an OCaml [%h] hex-float literal — the
    bit-exact transport used by the measurement cache and the fleet wire
    protocol (plain JSON numbers round through lossy decimal printing). *)

val hex_of : t -> float option
(** Read a float written by {!hex}; plain JSON numbers are also accepted. *)
