type level = Error | Warn | Info | Debug

let level_to_string = function
  | Error -> "error"
  | Warn -> "warn"
  | Info -> "info"
  | Debug -> "debug"

let level_of_string s =
  match String.lowercase_ascii s with
  | "error" -> Some Error
  | "warn" | "warning" -> Some Warn
  | "info" -> Some Info
  | "debug" -> Some Debug
  | "quiet" | "off" | "silent" -> Some Error
  | _ -> None

let severity = function Error -> 0 | Warn -> 1 | Info -> 2 | Debug -> 3

let current =
  ref
    (match Sys.getenv_opt "EMC_LOG" with
    | Some s -> ( match level_of_string s with Some l -> l | None -> Warn)
    | None -> Warn)

let set_level l = current := l
let level () = !current
let enabled l = severity l <= severity !current

let t0 = Unix.gettimeofday ()

let jsonl : out_channel option ref = ref None

let close_jsonl () =
  match !jsonl with
  | Some oc ->
      close_out_noerr oc;
      jsonl := None
  | None -> ()

let set_jsonl = function
  | None -> close_jsonl ()
  | Some path ->
      close_jsonl ();
      jsonl := Some (open_out_gen [ Open_append; Open_creat ] 0o644 path)

let () =
  match Sys.getenv_opt "EMC_LOG_FILE" with
  | Some path when path <> "" ->
      set_jsonl (Some path);
      at_exit close_jsonl
  | _ -> ()

let render_fields fields =
  if fields = [] then ""
  else
    " ("
    ^ String.concat " "
        (List.map
           (fun (k, v) ->
             k ^ "="
             ^ (match v with Json.Str s -> s | j -> Json.to_string j))
           fields)
    ^ ")"

let emit lvl src fields msg =
  Printf.eprintf "[%7.1fs] %-5s %s: %s%s\n%!"
    (Unix.gettimeofday () -. t0)
    (level_to_string lvl) src msg (render_fields fields);
  match !jsonl with
  | None -> ()
  | Some oc ->
      let record =
        Json.Obj
          ([
             ("ts", Json.Float (Unix.gettimeofday ()));
             ("level", Json.Str (level_to_string lvl));
             ("src", Json.Str src);
             ("msg", Json.Str msg);
           ]
          @ if fields = [] then [] else [ ("fields", Json.Obj fields) ])
      in
      output_string oc (Json.to_string record);
      output_char oc '\n';
      flush oc

let logf lvl ~src ?(fields = []) fmt =
  if enabled lvl then Printf.ksprintf (emit lvl src fields) fmt
  else Printf.ikfprintf (fun () -> ()) () fmt

let err ~src ?fields fmt = logf Error ~src ?fields fmt
let warn ~src ?fields fmt = logf Warn ~src ?fields fmt
let info ~src ?fields fmt = logf Info ~src ?fields fmt
let debug ~src ?fields fmt = logf Debug ~src ?fields fmt
