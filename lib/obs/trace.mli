(** Hierarchical timed spans exported in Chrome [trace_event] format
    (open the output file in [chrome://tracing] or Perfetto).

    Tracing is off by default; enable with [EMC_TRACE=<file>] in the
    environment or {!enable} from code (the CLI's [--trace FILE] does the
    latter). When disabled, {!with_span} calls the body directly — no
    timestamps, no allocation — so instrumentation can stay in place on
    hot paths. Span arguments are built lazily ([unit -> ...]) for the
    same reason.

    Events are buffered in memory and written on {!flush} (registered
    [at_exit] when tracing is enabled). The run is single-threaded, so
    all events share pid/tid 1 and viewers reconstruct the hierarchy from
    interval containment of the "X" (complete) events. *)

val enable : string -> unit
(** Start tracing into the given file (truncating it at flush time).
    Resets the clock origin. An unwritable path logs an error and
    leaves tracing disabled rather than blowing up at exit. *)

val disable : unit -> unit
(** Stop tracing and drop buffered events (tests). *)

val enabled : unit -> bool

val with_span :
  ?cat:string -> ?args:(unit -> (string * Json.t) list) -> string -> (unit -> 'a) -> 'a
(** [with_span name f] times [f] as one complete event. Exceptions
    propagate; the span is still recorded, tagged [error=true]. *)

val instant : ?args:(unit -> (string * Json.t) list) -> string -> unit
(** A zero-duration marker event (e.g. a SMARTS refinement firing). *)

val counter : string -> (string * float) list -> unit
(** A Chrome counter event: named series plotted over trace time (e.g.
    per-generation GA fitness). *)

val flush : unit -> unit
(** Write all buffered events to the trace file as a single JSON document
    [{"traceEvents": [...]}]. Safe to call repeatedly; a no-op when
    disabled. *)
