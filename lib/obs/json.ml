type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_finite f then Buffer.add_string buf (float_to_string f)
      else Buffer.add_string buf "null"
  | Str s -> escape_to buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          to_buffer buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  to_buffer buf j;
  Buffer.contents buf

(* ---------------- parser ---------------- *)

exception Parse_error of string

let parse_exn s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("invalid literal, expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          if !pos >= n then fail "unterminated escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char buf '"'; advance ()
          | '\\' -> Buffer.add_char buf '\\'; advance ()
          | '/' -> Buffer.add_char buf '/'; advance ()
          | 'b' -> Buffer.add_char buf '\b'; advance ()
          | 'f' -> Buffer.add_char buf '\012'; advance ()
          | 'n' -> Buffer.add_char buf '\n'; advance ()
          | 'r' -> Buffer.add_char buf '\r'; advance ()
          | 't' -> Buffer.add_char buf '\t'; advance ()
          | 'u' ->
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              let code = int_of_string ("0x" ^ String.sub s !pos 4) in
              pos := !pos + 4;
              (* UTF-8 encode the BMP code point *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
          | c -> fail (Printf.sprintf "invalid escape '\\%c'" c));
          go ()
      | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    let digits () =
      while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
        advance ()
      done
    in
    digits ();
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if text = "" || text = "-" then fail "invalid number";
    if !is_float then Float (float_of_string text)
    else match int_of_string_opt text with Some i -> Int i | None -> Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); List [] end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let pair () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let items = ref [ pair () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := pair () :: !items;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !items)
        end
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse s =
  match parse_exn s with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

let parse_exn s =
  match parse s with Ok v -> v | Error msg -> failwith ("Json.parse: " ^ msg)

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

(* Bit-exact float transport: JSON numbers round through decimal printing,
   so values that must round-trip exactly (measurement caches, the fleet
   wire protocol) travel as OCaml %h hex-float literals inside strings. *)

let hex f = Str (Printf.sprintf "%h" f)

let hex_of = function
  | Str s -> float_of_string_opt s
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None
