(** Process-wide metrics registry: named counters, gauges and histograms.

    Handles are obtained once (typically at module initialization) with
    {!counter} / {!gauge} / {!histogram}; updating through a handle is a
    single field write, so the always-on instrumentation of the hot paths
    (simulator runs, cache lookups, GA generations) costs nothing
    measurable and produces no output until a dump is requested
    ([emc ... --metrics], or {!dump_text} / {!to_json} from code).

    Names are dotted lowercase paths, [<subsystem>.<what>] — e.g.
    [sim.issue_stall_cycles], [smarts.refinements], [measure.compiles].
    Registering the same name twice returns the same metric; registering it
    as two different kinds raises [Invalid_argument]. *)

type counter
type gauge
type histogram

val counter : string -> counter
(** Get or create the counter registered under this name. *)

val incr : ?by:int -> counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val gauge : string -> gauge
val set : gauge -> float -> unit
val gauge_read : gauge -> float option
(** [None] until the first {!set}. *)

val histogram : string -> histogram

val observe : histogram -> float -> unit
(** Record one sample. Samples are kept exactly (the registry is
    process-local and runs are bounded), so dump-time percentiles are
    exact order statistics, not sketch approximations. *)

type hstats = {
  count : int;
  sum : float;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

val histogram_stats : histogram -> hstats option
(** [None] when the histogram has no samples. *)

(* -------- lookups by name (reporting, tests) -------- *)

val counter_value : string -> int option
val gauge_value : string -> float option
val stats_of : string -> hstats option

val dump_text : unit -> string
(** Human-readable dump of every registered metric, sorted by name, one
    per line. Histograms show count/mean/min/p50/p90/p99/max. *)

val to_json : unit -> Json.t
(** The whole registry as one JSON object keyed by metric name. *)

val reset : unit -> unit
(** Zero every counter, clear every gauge and histogram. Registrations
    (and outstanding handles) stay valid — intended for tests and for
    separating phases of long runs. *)
