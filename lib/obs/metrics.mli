(** Process-wide metrics registry: named counters, gauges and histograms.

    Handles are obtained once (typically at module initialization) with
    {!counter} / {!gauge} / {!histogram}; updating through a handle is a
    few field writes, so the always-on instrumentation of the hot paths
    (simulator runs, cache lookups, GA generations, served requests)
    costs nothing measurable and produces no output until a dump is
    requested ([emc ... --metrics], or {!dump_text} / {!to_json} from
    code).

    Names are dotted lowercase paths, [<subsystem>.<what>] — e.g.
    [sim.issue_stall_cycles], [smarts.refinements], [serve.requests].
    Registering the same name twice returns the same metric; registering it
    as two different kinds raises [Invalid_argument].

    {2 Histogram representation}

    Histograms are {e bounded}: samples land in a fixed array of
    log-spaced buckets (32 per octave, covering [2^-30, 2^50) ~
    [9.3e-10, 1.1e15), plus underflow/overflow edge buckets), so a
    histogram costs constant memory no matter how many samples a
    long-running daemon records. Count, sum (Kahan-compensated), min and
    max are tracked exactly; percentiles are derived from the buckets and
    are accurate to one bucket width — a relative error of at most
    [2^(1/32) - 1 ~ 2.2%] — and always clamped into the exact
    [[min, max]] range. Values outside the covered range (including
    zero, negatives and NaN) count toward [count]/[sum] and land in the
    edge buckets.

    {2 Snapshots}

    A {!snapshot} captures the whole registry as an immutable value that
    can be serialized to JSON ([emc-metrics-snapshot/1]) and merged with
    snapshots from other processes: counters sum exactly, histograms
    merge bucket-wise (so merged percentiles are as accurate as if one
    process had seen every sample), gauges take the last-merged value.
    This is how the pre-forked serving daemon aggregates [/metrics]
    across workers and how [emc loadgen] combines per-connection latency
    recordings. *)

type counter
type gauge
type histogram

val counter : string -> counter
(** Get or create the counter registered under this name. *)

val incr : ?by:int -> counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val gauge : string -> gauge
val set : gauge -> float -> unit
val gauge_read : gauge -> float option
(** [None] until the first {!set}. *)

val histogram : string -> histogram

val observe : histogram -> float -> unit
(** Record one sample into its log-scale bucket: O(1) time, no
    allocation, constant total memory (see the module docs for the
    bucket scheme and resolution). *)

type hstats = {
  count : int;
  sum : float;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

val histogram_stats : histogram -> hstats option
(** [None] when the histogram has no samples. [count]/[sum]/[min]/[max]
    are exact; percentiles are bucket-resolution estimates (<= 2.2%
    relative error), clamped into [[min, max]]. *)

val histogram_percentile : histogram -> float -> float option
(** [histogram_percentile h q] with [q] in [[0, 100]] — same estimator
    as the percentiles in {!histogram_stats} (e.g. [99.9] for p99.9).
    [None] when empty. *)

(* -------- lookups by name (reporting, tests) -------- *)

val counter_value : string -> int option
val gauge_value : string -> float option
val stats_of : string -> hstats option

(* -------- snapshots: cross-process aggregation -------- *)

type snapshot
(** An immutable capture of the whole registry, mergeable and
    JSON-serializable. *)

type hsnap
(** One histogram's state inside a snapshot. *)

val snapshot : unit -> snapshot
(** Capture every registered metric (unset gauges are omitted; empty
    histograms are kept, so registration names survive aggregation). *)

val snapshot_empty : snapshot
(** The unit of {!merge}. *)

val merge : snapshot -> snapshot -> snapshot
(** Union by metric name: counters add, histograms merge bucket-wise
    (count/sum/min/max combine exactly), gauges keep the right-hand
    value when both sides set one. *)

val snapshot_to_json : snapshot -> Json.t
(** Serialize as an [emc-metrics-snapshot/1] document. Bucket lists are
    sparse, so idle registries serialize small. *)

val snapshot_of_json : Json.t -> (snapshot, string) result
(** Total inverse of {!snapshot_to_json} with one-line diagnostics. *)

val snapshot_counters : snapshot -> (string * int) list
(** Sorted by name; likewise the other two accessors. *)

val snapshot_gauges : snapshot -> (string * float) list
val snapshot_histograms : snapshot -> (string * hsnap) list

val hsnap_stats : hsnap -> hstats option
val hsnap_percentile : hsnap -> float -> float option
(** As {!histogram_percentile}, over a (possibly merged) snapshot. *)

val hsnap_cumulative : hsnap -> (float * int) list
(** [(upper_bound, cumulative_count)] for each occupied bucket in
    ascending order — the Prometheus [le=] bucket series (the final
    upper bound is clamped to the exact max; the exporter adds
    [le="+Inf"] from [count]). *)

(* -------- dumps -------- *)

val dump_text : unit -> string
(** Human-readable dump of every registered metric, sorted by name, one
    per line. Histograms show count/mean/min/p50/p90/p99/max. *)

val to_json : unit -> Json.t
(** The whole registry as one JSON object keyed by metric name. *)

val reset : unit -> unit
(** Zero every counter, clear every gauge and histogram. Registrations
    (and outstanding handles) stay valid — intended for tests and for
    separating phases of long runs. *)
