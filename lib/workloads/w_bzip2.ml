open Emc_util

(** 256.bzip2-graphic stand-in: block transform compression — per-block
    counting sort, a move-to-front pass and run-length accumulation.
    Integer-heavy with nested loops over small tables, like bzip2's Huffman
    and MTF stages; moderately cache-friendly. *)

let source =
  {|
int params[8];
int buf[32768];
int freq[256];
int mtf[256];
int sorted[32768];

fn counting_sort_block(lo: int, hi: int) -> int {
  for (v = 0; v < 256; v = v + 1) {
    freq[v] = 0;
  }
  for (i = lo; i < hi; i = i + 1) {
    let b = buf[i];
    freq[b] = freq[b] + 1;
  }
  let pos = lo;
  let csum = 0;
  for (v = 0; v < 256; v = v + 1) {
    let c = freq[v];
    let k = 0;
    while (k < c) {
      sorted[pos] = v;
      pos = pos + 1;
      k = k + 1;
    }
    csum = csum + c * v;
  }
  return csum;
}

fn mtf_encode(lo: int, hi: int) -> int {
  for (v = 0; v < 256; v = v + 1) {
    mtf[v] = v;
  }
  let acc = 0;
  for (i = lo; i < hi; i = i + 1) {
    let b = sorted[i];
    let j = 0;
    while (mtf[j] != b) {
      j = j + 1;
    }
    acc = acc + j;
    while (j > 0) {
      mtf[j] = mtf[j - 1];
      j = j - 1;
    }
    mtf[0] = b;
  }
  return acc;
}

fn rle(lo: int, hi: int) -> int {
  let runs = 0;
  let i = lo;
  while (i < hi) {
    let v = buf[i];
    let j = i + 1;
    while (j < hi && buf[j] == v) {
      j = j + 1;
    }
    runs = runs + 1;
    i = j;
  }
  return runs;
}

fn main() -> int {
  let n = params[0];
  let blk = params[1];
  let csum = 0;
  let macc = 0;
  let runs = 0;
  let lo = 0;
  while (lo < n) {
    let hi = lo + blk;
    if (hi > n) { hi = n; }
    csum = csum + counting_sort_block(lo, hi);
    macc = macc + mtf_encode(lo, hi);
    runs = runs + rle(lo, hi);
    lo = hi;
  }
  out(csum);
  out(macc);
  out(runs);
  return csum + macc + runs;
}
|}

let arrays ~scale ~variant =
  let n = Workload.sc scale (match variant with Workload.Train -> 6000 | Ref -> 12000) in
  let n = min n 32768 in
  let seed = match variant with Workload.Train -> 23 | Ref -> 301 in
  let rng = Rng.create seed in
  let buf =
    let cur = ref 0 in
    let run = ref 0 in
    Array.init 32768 (fun _ ->
        if !run = 0 then begin
          cur := Rng.int rng 64;
          run := 1 + Rng.int rng 12
        end;
        decr run;
        if Rng.int rng 6 = 0 then Rng.int rng 256 else !cur)
  in
  [
    ("params", Workload.DInt [| n; 1500; 0; 0; 0; 0; 0; 0 |]);
    ("buf", Workload.DInt buf);
  ]

let workload =
  {
    Workload.name = "256.bzip2";
    description = "block-transform compressor (counting sort + MTF + RLE)";
    source;
    arrays;
  }
