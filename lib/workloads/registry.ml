(** The seven benchmark/input pairs of the paper's Table 3. *)

let all : Workload.t list =
  [
    W_gzip.workload;
    W_vpr.workload;
    W_mesa.workload;
    W_art.workload;
    W_mcf.workload;
    W_vortex.workload;
    W_bzip2.workload;
  ]

let find name =
  match List.find_opt (fun (w : Workload.t) -> w.name = name) all with
  | Some w -> w
  | None ->
      (* allow the short name too, e.g. "art" for "179.art" *)
      (match
         List.find_opt
           (fun (w : Workload.t) ->
             match String.index_opt w.Workload.name '.' with
             | Some i -> String.sub w.name (i + 1) (String.length w.name - i - 1) = name
             | None -> false)
           all
       with
      | Some w -> w
      | None -> invalid_arg ("Registry.find: unknown workload " ^ name))

let names = List.map (fun (w : Workload.t) -> w.Workload.name) all
