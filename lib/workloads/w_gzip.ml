open Emc_util

(** 164.gzip-graphic stand-in: LZ77-style compression over a synthetic
    "graphic" buffer (long runs + noise). Integer ALU and data-dependent
    branches dominate; the hash probe gives short unpredictable dependence
    chains — the behaviour that makes gzip sensitive to branch prediction
    and issue width rather than memory latency. *)

let source =
  {|
int params[8];
int text[32768];
int hashtab[4096];
int litcnt[4];

fn hash3(p: int) -> int {
  let h = text[p] * 31 + text[p + 1];
  h = h * 31 + text[p + 2];
  h = h % 4096;
  if (h < 0) { h = h + 4096; }
  return h;
}

fn match_len(a: int, b: int, limit: int) -> int {
  let l = 0;
  while (l < limit && text[a + l] == text[b + l]) {
    l = l + 1;
  }
  return l;
}

fn main() -> int {
  let n = params[0];
  let maxmatch = params[1];
  let lits = 0;
  let matches = 0;
  let outlen = 0;
  let csum = 0;
  let i = 0;
  while (i < n - 3) {
    let h = hash3(i);
    let cand = hashtab[h];
    hashtab[h] = i;
    let len = 0;
    if (cand > 0 && cand < i && i - cand < 8192) {
      let lim = maxmatch;
      if (n - i - 3 < lim) { lim = n - i - 3; }
      len = match_len(cand, i, lim);
    }
    if (len >= 3) {
      matches = matches + 1;
      outlen = outlen + 2;
      csum = csum + len * 7 + (i - cand);
      i = i + len;
    } else {
      lits = lits + 1;
      outlen = outlen + 1;
      csum = csum + text[i];
      i = i + 1;
    }
  }
  litcnt[0] = lits;
  litcnt[1] = matches;
  out(lits);
  out(matches);
  out(outlen);
  out(csum);
  return csum;
}
|}

let arrays ~scale ~variant =
  let n = Workload.sc scale (match variant with Workload.Train -> 12000 | Ref -> 24000) in
  let n = min n 32760 in
  let seed = match variant with Workload.Train -> 11 | Ref -> 191 in
  let rng = Rng.create seed in
  (* graphic-like data: runs of a value with sporadic noise *)
  let text =
    let cur = ref 0 in
    let run = ref 0 in
    Array.init 32768 (fun _ ->
        if !run = 0 then begin
          cur := Rng.int rng 256;
          run := 1 + Rng.int rng 24
        end;
        decr run;
        if Rng.int rng 10 = 0 then Rng.int rng 256 else !cur)
  in
  [
    ("params", Workload.DInt [| n; 64; 0; 0; 0; 0; 0; 0 |]);
    ("text", Workload.DInt text);
  ]

let workload =
  {
    Workload.name = "164.gzip";
    description = "LZ77-style compressor on a synthetic graphic buffer";
    source;
    arrays;
  }
