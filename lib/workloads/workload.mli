(** Workload interface: a MiniC program plus input generators.

    Each workload mimics the dominant behaviour of its SPEC CPU2000
    namesake (the seven program/input pairs of the paper's Table 3).
    Programs read size parameters from the [params] global array and data
    from input arrays the harness fills before simulation; results are
    emitted with [out], so every workload produces a checksum trace that
    must be bit-identical across compiler and microarchitecture
    configurations. *)

type data = DInt of int array | DFloat of float array

type variant = Train | Ref
(** The paper's train/ref input distinction (§6.3, Table 7): models are
    built on [Train]; [Ref] checks how prescribed settings transfer. *)

val variant_name : variant -> string

type t = {
  name : string;  (** e.g. "179.art" *)
  description : string;
  source : string;  (** MiniC source text *)
  arrays : scale:float -> variant:variant -> (string * data) list;
      (** deterministic input-array contents, including [params]; [scale]
          multiplies iteration counts (memory footprints stay fixed where
          the behaviour depends on them) *)
}

val sc : float -> int -> int
(** Scale an iteration count, keeping at least 1. *)

val ints : int -> (int -> int) -> data
val floats : int -> (int -> float) -> data
