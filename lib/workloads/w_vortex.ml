open Emc_util

(** 255.vortex-lendian1 stand-in: an object-store / in-memory database —
    hash-table inserts, lookups and deletes over an operation stream, with
    the work split across many small helper functions. Call-dominated
    integer code with scattered table accesses: the workload where
    -finline-functions and the inlining heuristics matter most. *)

let source =
  {|
int params[8];
int keys[16384];
int table[16384];
int vals[16384];
int stats[8];

fn hash(k: int) -> int {
  let h = k * 2654435761;
  if (h < 0) { h = -h; }
  return h % 16384;
}

fn probe(k: int) -> int {
  let i = hash(k);
  let steps = 0;
  while (table[i] != 0 && table[i] != k && steps < 16384) {
    i = i + 1;
    if (i >= 16384) { i = 0; }
    steps = steps + 1;
  }
  return i;
}

fn insert(k: int, v: int) -> int {
  let i = probe(k);
  if (table[i] == k) {
    vals[i] = vals[i] + v;
    return 0;
  }
  table[i] = k;
  vals[i] = v;
  return 1;
}

fn lookup(k: int) -> int {
  let i = probe(k);
  if (table[i] == k) {
    return vals[i];
  }
  return -1;
}

fn erase(k: int) -> int {
  let i = probe(k);
  if (table[i] == k) {
    table[i] = 0 - 1;
    vals[i] = 0;
    return 1;
  }
  return 0;
}

fn main() -> int {
  let nops = params[0];
  let inserted = 0;
  let hits = 0;
  let misses = 0;
  let erased = 0;
  let csum = 0;
  for (op = 0; op < nops; op = op + 1) {
    let k = keys[op % 16384];
    let kind = op % 10;
    if (kind < 5) {
      inserted = inserted + insert(k, op);
    } else {
      if (kind < 9) {
        let v = lookup(k);
        if (v >= 0) {
          hits = hits + 1;
          csum = csum + v % 4093;
        } else {
          misses = misses + 1;
        }
      } else {
        erased = erased + erase(k);
      }
    }
  }
  stats[0] = inserted;
  out(inserted);
  out(hits);
  out(misses);
  out(erased);
  out(csum);
  return csum;
}
|}

let arrays ~scale ~variant =
  let nops = Workload.sc scale (match variant with Workload.Train -> 7000 | Ref -> 14000) in
  let seed = match variant with Workload.Train -> 97 | Ref -> 1237 in
  let rng = Rng.create seed in
  (* keys drawn from a skewed distribution: hot keys reused often *)
  let keys =
    Array.init 16384 (fun _ ->
        if Rng.int rng 4 = 0 then 1 + Rng.int rng 64 else 1 + Rng.int rng 6000)
  in
  [
    ("params", Workload.DInt [| nops; 0; 0; 0; 0; 0; 0; 0 |]);
    ("keys", Workload.DInt keys);
  ]

let workload =
  {
    Workload.name = "255.vortex";
    description = "object store: hash-table ops through small helper functions";
    source;
    arrays;
  }
