(** Workload interface: a MiniC program plus input generators.

    Each workload mimics the dominant behaviour of its SPEC CPU2000
    namesake (the seven programs of the paper's Table 3). Programs read
    their size parameters from the [params] global array and their data from
    input arrays that the harness fills before simulation; results are
    emitted with [out], giving a checksum trace that must be identical
    across every compiler/microarchitecture configuration (this is how the
    test suite validates the whole compiler+simulator stack). *)

type data = DInt of int array | DFloat of float array

type variant = Train | Ref

let variant_name = function Train -> "train" | Ref -> "ref"

type t = {
  name : string;
  description : string;
  source : string;  (** MiniC source text *)
  arrays : scale:float -> variant:variant -> (string * data) list;
      (** contents for the input arrays, including [params] *)
}

(** Scale an iteration count, keeping at least 1. *)
let sc scale n = max 1 (int_of_float (float_of_int n *. scale))

let ints n f = DInt (Array.init n f)
let floats n f = DFloat (Array.init n f)
