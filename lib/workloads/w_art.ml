open Emc_util

(** 179.art stand-in: adaptive-resonance (ART) neural-network recognition.

    Mirrors the phase structure of SPEC's scanner: input normalization, an
    F1 bottom-up activation sweep against a large weight matrix (an L2-sized
    FP working set), F2 lateral competition, a vigilance test against the
    top-down weights, and resonance training of the winner (plus a periodic
    weight-decay sweep). Memory-bandwidth-bound FP with many tight
    unrollable loops — this is the program the paper uses for Figure 3
    (execution time vs max unroll factor and I-cache size): unrolling and
    inlining its many loop bodies inflates the code footprint past small
    instruction caches. *)

let source =
  {|
int params[8];
float w1[65536];
float w2[65536];
float inp[128];
float norm[128];
float act[512];
float match_score[512];
int winners[512];
int committed[512];

fn normalize(len: int) -> float {
  let total = 0.0;
  for (k = 0; k < len; k = k + 1) {
    total = total + inp[k];
  }
  if (total < 0.0001) { total = 0.0001; }
  let inv = 1.0 / total;
  for (k = 0; k < len; k = k + 1) {
    norm[k] = inp[k] * inv;
  }
  return total;
}

fn bottom_up(row: int, len: int) -> float {
  let base = row * len;
  let s = 0.0;
  for (k = 0; k < len; k = k + 1) {
    s = s + w1[base + k] * norm[k];
  }
  return s;
}

fn top_down_match(row: int, len: int) -> float {
  let base = row * len;
  let s = 0.0;
  let m = 0.0;
  for (k = 0; k < len; k = k + 1) {
    let x = norm[k];
    let y = w2[base + k];
    let mn = x;
    if (y < x) { mn = y; }
    s = s + x;
    m = m + mn;
  }
  if (s < 0.0001) { s = 0.0001; }
  return m / s;
}

fn f1_sweep(rows: int, len: int) -> int {
  let best = 0;
  let bestv = -1000000.0;
  for (j = 0; j < rows; j = j + 1) {
    let a = bottom_up(j, len);
    let bias = 0.0;
    if (committed[j] == 0) {
      bias = 0.01;
    }
    act[j] = a + bias;
    if (act[j] > bestv) {
      bestv = act[j];
      best = j;
    }
  }
  return best;
}

fn lateral_inhibit(rows: int, win: int) -> float {
  let sum = 0.0;
  for (j = 0; j < rows; j = j + 1) {
    if (j != win) {
      act[j] = act[j] * 0.9;
    }
    sum = sum + act[j];
  }
  return sum;
}

fn train_winner(row: int, len: int, rate: float) {
  let base = row * len;
  for (k = 0; k < len; k = k + 1) {
    w1[base + k] = w1[base + k] * (1.0 - rate) + norm[k] * rate;
  }
  for (k = 0; k < len; k = k + 1) {
    let x = norm[k];
    let y = w2[base + k];
    let mn = x;
    if (y < x) { mn = y; }
    w2[base + k] = y * (1.0 - rate) + mn * rate;
  }
  committed[row] = 1;
  return;
}

fn decay_all(rows: int, len: int) {
  let n = rows * len;
  for (k = 0; k < n; k = k + 1) {
    w1[k] = w1[k] * 0.9999 + 0.000001;
  }
  return;
}

fn main() -> int {
  let rows = params[0];
  let len = params[1];
  let passes = params[2];
  let vigilance = 0.35;
  let csum = 0;
  let resonated = 0;
  for (p = 0; p < passes; p = p + 1) {
    let phase = p % 7;
    for (k = 0; k < len; k = k + 1) {
      inp[k] = float((k * 13 + phase * 29) % 97) * 0.01 + 0.01;
    }
    normalize(len);
    let win = f1_sweep(rows, len);
    lateral_inhibit(rows, win);
    let m = top_down_match(win, len);
    match_score[p % 512] = m;
    if (m >= vigilance) {
      train_winner(win, len, 0.05);
      resonated = resonated + 1;
    } else {
      // mismatch reset: search the next-best candidate once
      act[win] = -1000000.0;
      let second = 0;
      let bv = -1000000.0;
      for (j = 0; j < rows; j = j + 1) {
        if (act[j] > bv) {
          bv = act[j];
          second = j;
        }
      }
      train_winner(second, len, 0.02);
      win = second;
    }
    winners[p % 512] = win;
    csum = csum + win;
    if (phase == 6) {
      decay_all(rows, len);
    }
  }
  out(csum);
  out(resonated);
  out(act[0]);
  return csum;
}
|}

let arrays ~scale ~variant =
  let rows = Workload.sc scale (match variant with Workload.Train -> 320 | Ref -> 448) in
  let rows = min rows 512 in
  let len = 128 in
  let passes = match variant with Workload.Train -> 3 | Ref -> 4 in
  let seed = match variant with Workload.Train -> 53 | Ref -> 907 in
  let rng = Rng.create seed in
  let w1 = Array.init 65536 (fun _ -> Rng.float rng 1.0) in
  let w2 = Array.init 65536 (fun _ -> Rng.float rng 1.0) in
  [
    ("params", Workload.DInt [| rows; len; passes; 0; 0; 0; 0; 0 |]);
    ("w1", Workload.DFloat w1);
    ("w2", Workload.DFloat w2);
  ]

let workload =
  {
    Workload.name = "179.art";
    description = "adaptive-resonance neural net (large FP weight-matrix scans)";
    source;
    arrays;
  }
