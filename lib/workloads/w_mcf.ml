open Emc_util

(** 181.mcf stand-in: network-simplex-style pointer chasing — traversals of a
    node list linked through a shuffled permutation array (dependent loads
    that defeat both caches and prefetching), cost accumulation and sporadic
    relinking. Memory-latency-bound integer code, the classic mcf
    behaviour: performance is dominated by L2 size and memory latency. *)

let source =
  {|
int params[8];
int nxt[131072];
int cost[131072];
int potential[131072];

fn chase(start: int, steps: int) -> int {
  let node = start;
  let acc = 0;
  let k = 0;
  while (k < steps) {
    acc = acc + cost[node];
    node = nxt[node];
    k = k + 1;
  }
  potential[start] = acc;
  return node;
}

fn relink(a: int, b: int) {
  let t = nxt[a];
  nxt[a] = nxt[b];
  nxt[b] = t;
  return;
}

fn main() -> int {
  let nodes = params[0];
  let iters = params[1];
  let steps = params[2];
  let csum = 0;
  let node = 0;
  for (it = 0; it < iters; it = it + 1) {
    let start = node % nodes;
    node = chase(start, steps);
    csum = csum + potential[start] % 1009;
    if (it % 7 == 3) {
      relink(node % nodes, (node * 17 + it) % nodes);
    }
  }
  out(csum);
  out(node);
  return csum;
}
|}

let arrays ~scale ~variant =
  (* node count (memory footprint) fixed per input — mcf must stay
     memory-bound at any scale; [scale] varies the iteration count *)
  let nodes = match variant with Workload.Train -> 65536 | Ref -> 131072 in
  let iters = Workload.sc scale (match variant with Workload.Train -> 60 | Ref -> 80) in
  let steps = 1500 in
  let seed = match variant with Workload.Train -> 71 | Ref -> 1013 in
  let rng = Rng.create seed in
  (* a random single-cycle permutation (Sattolo) over the first [nodes]
     entries: every chase is one long dependent-load chain *)
  let nxt = Array.init 131072 (fun i -> i) in
  let perm = Array.init nodes Fun.id in
  for i = nodes - 1 downto 1 do
    let j = Rng.int rng i in
    let t = perm.(i) in
    perm.(i) <- perm.(j);
    perm.(j) <- t
  done;
  for i = 0 to nodes - 1 do
    nxt.(perm.(i)) <- perm.((i + 1) mod nodes)
  done;
  let cost = Array.init 131072 (fun _ -> Rng.int rng 1000) in
  [
    ("params", Workload.DInt [| nodes; iters; steps; 0; 0; 0; 0; 0 |]);
    ("nxt", Workload.DInt nxt);
    ("cost", Workload.DInt cost);
  ]

let workload =
  {
    Workload.name = "181.mcf";
    description = "network-simplex pointer chasing (memory-latency bound)";
    source;
    arrays;
  }
