open Emc_util

(** 177.mesa stand-in: a software 3D vertex pipeline — 4x4 matrix transform,
    perspective divide, diffuse lighting and a viewport clip test over a
    vertex buffer. Dense sequential FP (mul/add chains) with a few
    data-dependent branches; benefits from unrolling, scheduling and
    prefetching like mesa's inner loops. *)

let source =
  {|
int params[8];
float verts[49152];
float m[16];
float light[4];
float outv[49152];
int counts[4];

fn transform_and_light(n: int) -> float {
  let acc = 0.0;
  let inside = 0;
  for (v = 0; v < n; v = v + 1) {
    let b = v * 3;
    let x = verts[b];
    let y = verts[b + 1];
    let z = verts[b + 2];
    let tx = m[0] * x + m[1] * y + m[2] * z + m[3];
    let ty = m[4] * x + m[5] * y + m[6] * z + m[7];
    let tz = m[8] * x + m[9] * y + m[10] * z + m[11];
    let tw = m[12] * x + m[13] * y + m[14] * z + m[15];
    if (tw < 0.001) { tw = 0.001; }
    let px = tx / tw;
    let py = ty / tw;
    let pz = tz / tw;
    let ndot = px * light[0] + py * light[1] + pz * light[2];
    if (ndot < 0.0) { ndot = 0.0; }
    let shade = ndot * light[3];
    outv[b] = px;
    outv[b + 1] = py;
    outv[b + 2] = shade;
    if (px > -1.0 && px < 1.0 && py > -1.0 && py < 1.0) {
      inside = inside + 1;
      acc = acc + shade;
    }
  }
  counts[0] = inside;
  return acc;
}

fn main() -> int {
  let n = params[0];
  let frames = params[1];
  let total = 0.0;
  for (f = 0; f < frames; f = f + 1) {
    let wob = float(f) * 0.01;
    m[3] = m[3] + wob;
    total = total + transform_and_light(n);
  }
  out(counts[0]);
  out(total);
  return counts[0];
}
|}

let arrays ~scale ~variant =
  (* vertex count (footprint) fixed per input; [scale] varies frame count *)
  let n = match variant with Workload.Train -> 3000 | Ref -> 6000 in
  let frames = Workload.sc scale (match variant with Workload.Train -> 8 | Ref -> 10) in
  let seed = match variant with Workload.Train -> 37 | Ref -> 577 in
  let rng = Rng.create seed in
  let verts = Array.init 49152 (fun _ -> Rng.float rng 4.0 -. 2.0) in
  let m =
    [| 0.9; 0.1; 0.0; 0.2; -0.1; 0.95; 0.05; -0.3; 0.0; 0.08; 1.05; 0.5; 0.01; 0.0; 0.12; 2.0 |]
  in
  [
    ("params", Workload.DInt [| n; frames; 0; 0; 0; 0; 0; 0 |]);
    ("verts", Workload.DFloat verts);
    ("m", Workload.DFloat m);
    ("light", Workload.DFloat [| 0.3; 0.6; 0.74; 0.8 |]);
  ]

let workload =
  {
    Workload.name = "177.mesa";
    description = "3D vertex transform + lighting pipeline (dense FP)";
    source;
    arrays;
  }
