open Emc_util

(** 175.vpr-route stand-in: maze routing on a 2D grid — repeated
    breadth-first wavefront expansions from source to sink over a congestion
    cost map, with path backtrace and cost update. Mixed integer arithmetic
    with an explicit work queue; moderately irregular memory and branchy
    control, like VPR's router. *)

let source =
  {|
int params[8];
int gcost[16384];
int dist[16384];
int queue[32768];
int hist[16384];

fn route_one(w: int, h: int, src: int, dst: int) -> int {
  let n = w * h;
  for (i = 0; i < n; i = i + 1) {
    dist[i] = 1000000;
  }
  let head = 0;
  let tail = 0;
  dist[src] = 0;
  queue[tail] = src;
  tail = tail + 1;
  let found = 0;
  while (head < tail && found == 0) {
    let cur = queue[head];
    head = head + 1;
    if (cur == dst) {
      found = 1;
    } else {
      let d = dist[cur] + 1 + gcost[cur];
      let x = cur % w;
      let y = cur / w;
      if (x + 1 < w && d < dist[cur + 1]) {
        dist[cur + 1] = d;
        if (tail < 32768) { queue[tail] = cur + 1; tail = tail + 1; }
      }
      if (x > 0 && d < dist[cur - 1]) {
        dist[cur - 1] = d;
        if (tail < 32768) { queue[tail] = cur - 1; tail = tail + 1; }
      }
      if (y + 1 < h && d < dist[cur + w]) {
        dist[cur + w] = d;
        if (tail < 32768) { queue[tail] = cur + w; tail = tail + 1; }
      }
      if (y > 0 && d < dist[cur - w]) {
        dist[cur - w] = d;
        if (tail < 32768) { queue[tail] = cur - w; tail = tail + 1; }
      }
    }
  }
  // congestion update along a greedy backtrace
  let cur = dst;
  let len = 0;
  while (cur != src && len < 4096 && found == 1) {
    gcost[cur] = gcost[cur] + 1;
    hist[cur] = hist[cur] + 1;
    let x = cur % w;
    let y = cur / w;
    let best = cur;
    let bd = dist[cur];
    if (x + 1 < w && dist[cur + 1] < bd) { bd = dist[cur + 1]; best = cur + 1; }
    if (x > 0 && dist[cur - 1] < bd) { bd = dist[cur - 1]; best = cur - 1; }
    if (y + 1 < h && dist[cur + w] < bd) { bd = dist[cur + w]; best = cur + w; }
    if (y > 0 && dist[cur - w] < bd) { bd = dist[cur - w]; best = cur - w; }
    if (best == cur) { cur = src; } else { cur = best; }
    len = len + 1;
  }
  return dist[dst] + len;
}

fn main() -> int {
  let w = params[0];
  let h = params[1];
  let nets = params[2];
  let csum = 0;
  for (t = 0; t < nets; t = t + 1) {
    let src = (t * 2654435761) % (w * h);
    if (src < 0) { src = -src; }
    let dst = (t * 40503 + 12345) % (w * h);
    if (dst < 0) { dst = -dst; }
    if (src != dst) {
      csum = csum + route_one(w, h, src, dst);
    }
  }
  out(csum);
  return csum;
}
|}

let arrays ~scale ~variant =
  (* the grid (memory footprint) is fixed per input; [scale] varies the
     number of nets routed (simulation length) *)
  let dim = match variant with Workload.Train -> 40 | Ref -> 56 in
  let nets = Workload.sc scale (match variant with Workload.Train -> 14 | Ref -> 18) in
  let seed = match variant with Workload.Train -> 5 | Ref -> 401 in
  let rng = Rng.create seed in
  let gcost = Array.init 16384 (fun _ -> Rng.int rng 4) in
  [
    ("params", Workload.DInt [| dim; dim; nets; 0; 0; 0; 0; 0 |]);
    ("gcost", Workload.DInt gcost);
  ]

let workload =
  {
    Workload.name = "175.vpr";
    description = "maze router: BFS wavefront over a congestion grid";
    source;
    arrays;
  }
