(** Abstract syntax of MiniC, the small imperative language the workloads are
    written in. Two scalar types ([int] = 64-bit integer, [float] = IEEE
    double); global fixed-size arrays; functions with by-value scalar
    parameters; structured control flow including a canonical [for] loop that
    lowers to the counted-loop shape the optimizer recognizes. *)

type ty = Tint | Tfloat

type pos = { line : int; col : int }

type binop =
  | Add | Sub | Mul | Div | Rem
  | BAnd | BOr | BXor | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge
  | LAnd | LOr  (** short-circuit *)

type unop = Neg | Not

type expr = { desc : expr_desc; pos : pos }

and expr_desc =
  | Int of int
  | Float of float
  | Var of string
  | Index of string * expr  (** [a\[e\]] *)
  | Bin of binop * expr * expr
  | Un of unop * expr
  | CallE of string * expr list
  | CastInt of expr
  | CastFloat of expr

type stmt = { sdesc : stmt_desc; spos : pos }

and stmt_desc =
  | Let of string * ty option * expr
  | Assign of string * expr
  | AssignIdx of string * expr * expr  (** [a\[e1\] = e2] *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of string * expr * binop * expr * expr * stmt list
      (** [For (i, init, cmp, bound, step, body)] represents
          [for (i = init; i cmp bound; i = i + step) body] with [cmp] one of
          [Lt]/[Le] and [step] a positive expression. *)
  | Return of expr option
  | ExprStmt of expr
  | Out of expr  (** [out(e)]: append e to the program's observable output *)

type func = {
  fn_name : string;
  fn_params : (string * ty) list;
  fn_ret : ty option;
  fn_body : stmt list;
  fn_pos : pos;
}

type global = { g_name : string; g_ty : ty; g_size : int; g_pos : pos }

type program = { globals : global list; funcs : func list }
