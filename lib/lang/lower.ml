open Emc_ir
(** Lowering from the MiniC AST to the IR.

    Salient choices:
    - each mutable source variable gets one virtual register (the IR is not
      SSA; later passes cope with multiple definitions conservatively);
    - array accesses lower to explicit address arithmetic
      ([shl idx, 3] then [add, base-immediate]) so that GCSE, strength
      reduction and prefetching can manipulate addresses;
    - [for] bounds are evaluated once, in the preheader, and steps are
      immediate constants — producing exactly the canonical counted-loop
      shape {!Emc_ir.Loops.counted_loop} recognizes;
    - [&&]/[||] lower to short-circuit control flow (extra branches, which is
      what a branch predictor sees from real compilers). *)

type env = { mutable scopes : (string * Ir.vreg) list list }

let lookup env name =
  let rec find = function
    | [] -> invalid_arg ("Lower: unbound variable " ^ name)
    | sc :: rest -> ( match List.assoc_opt name sc with Some v -> Some v | None -> find rest)
  in
  match find env.scopes with Some v -> v | None -> assert false

let declare env name v =
  match env.scopes with
  | sc :: rest -> env.scopes <- ((name, v) :: sc) :: rest
  | [] -> assert false

let lower_program (ast : Ast.program) : Ir.program =
  let globals =
    List.map
      (fun (g : Ast.global) ->
        {
          Ir.gname = g.g_name;
          gty = (match g.g_ty with Ast.Tint -> Ir.I64 | Ast.Tfloat -> Ir.F64);
          gsize = g.g_size;
        })
      ast.globals
  in
  let layout = Memlayout.compute { Ir.funcs = []; globals } in
  let global_ty name =
    (List.find (fun (g : Ir.global) -> g.gname = name) globals).Ir.gty
  in
  let fsigs =
    List.map
      (fun (f : Ast.func) ->
        ( f.fn_name,
          (List.map snd f.fn_params, f.fn_ret) ))
      ast.funcs
  in
  let lower_func (f : Ast.func) =
    let ir_ty = function Ast.Tint -> Ir.I64 | Ast.Tfloat -> Ir.F64 in
    let b =
      Builder.create_func ~name:f.fn_name
        ~param_tys:(List.map (fun (_, t) -> ir_ty t) f.fn_params)
        ~ret_ty:(Option.map ir_ty f.fn_ret)
    in
    let env = { scopes = [ [] ] } in
    List.iteri (fun i (n, _) -> declare env n i) f.fn_params;
    let rec lower_expr (e : Ast.expr) : Ir.vreg =
      match e.desc with
      | Ast.Int v -> Builder.iconst b v
      | Ast.Float v -> Builder.fconst b v
      | Ast.Var n -> lookup env n
      | Ast.Index (arr, idx) ->
          let addr = lower_address arr idx in
          Builder.load b (global_ty arr) addr
      | Ast.CastInt e' ->
          let v = lower_expr e' in
          if Ir.reg_type b.Builder.func v = Ir.F64 then Builder.ftoi b v else v
      | Ast.CastFloat e' ->
          let v = lower_expr e' in
          if Ir.reg_type b.Builder.func v = Ir.I64 then Builder.itof b v else v
      | Ast.Un (Ast.Neg, e') ->
          let v = lower_expr e' in
          if Ir.reg_type b.Builder.func v = Ir.I64 then
            Builder.ibin b Ir.Sub (Ir.Imm 0) (Ir.Reg v)
          else
            let z = Builder.fconst b 0.0 in
            Builder.fbin b Ir.FSub z v
      | Ast.Un (Ast.Not, e') ->
          let v = lower_expr e' in
          Builder.icmp b Ir.Eq (Ir.Reg v) (Ir.Imm 0)
      | Ast.CallE (name, args) ->
          let argv = List.map lower_expr args in
          let ret =
            match List.assoc_opt name fsigs with
            | Some (_, Some t) -> Some (ir_ty t)
            | _ -> None
          in
          (match Builder.call b ~ret name argv with
          | Some d -> d
          | None -> invalid_arg "Lower: void call in expression position")
      | Ast.Bin (Ast.LAnd, a, c) -> lower_shortcircuit ~is_and:true a c
      | Ast.Bin (Ast.LOr, a, c) -> lower_shortcircuit ~is_and:false a c
      | Ast.Bin (op, a, c) -> (
          let va = lower_expr a in
          let vc = lower_expr c in
          let fty = Ir.reg_type b.Builder.func va in
          let int_op o = Builder.ibin b o (Ir.Reg va) (Ir.Reg vc) in
          let f_op o = Builder.fbin b o va vc in
          let int_cmp o = Builder.icmp b o (Ir.Reg va) (Ir.Reg vc) in
          let f_cmp o = Builder.fcmp b o va vc in
          match (op, fty) with
          | Ast.Add, Ir.I64 -> int_op Ir.Add
          | Ast.Sub, Ir.I64 -> int_op Ir.Sub
          | Ast.Mul, Ir.I64 -> int_op Ir.Mul
          | Ast.Div, Ir.I64 -> int_op Ir.Div
          | Ast.Add, Ir.F64 -> f_op Ir.FAdd
          | Ast.Sub, Ir.F64 -> f_op Ir.FSub
          | Ast.Mul, Ir.F64 -> f_op Ir.FMul
          | Ast.Div, Ir.F64 -> f_op Ir.FDiv
          | Ast.Rem, _ -> int_op Ir.Rem
          | Ast.BAnd, _ -> int_op Ir.And
          | Ast.BOr, _ -> int_op Ir.Or
          | Ast.BXor, _ -> int_op Ir.Xor
          | Ast.Shl, _ -> int_op Ir.Shl
          | Ast.Shr, _ -> int_op Ir.Shr
          | Ast.Eq, Ir.I64 -> int_cmp Ir.Eq
          | Ast.Ne, Ir.I64 -> int_cmp Ir.Ne
          | Ast.Lt, Ir.I64 -> int_cmp Ir.Lt
          | Ast.Le, Ir.I64 -> int_cmp Ir.Le
          | Ast.Gt, Ir.I64 -> int_cmp Ir.Gt
          | Ast.Ge, Ir.I64 -> int_cmp Ir.Ge
          | Ast.Eq, Ir.F64 -> f_cmp Ir.Eq
          | Ast.Ne, Ir.F64 -> f_cmp Ir.Ne
          | Ast.Lt, Ir.F64 -> f_cmp Ir.Lt
          | Ast.Le, Ir.F64 -> f_cmp Ir.Le
          | Ast.Gt, Ir.F64 -> f_cmp Ir.Gt
          | Ast.Ge, Ir.F64 -> f_cmp Ir.Ge
          | (Ast.LAnd | Ast.LOr), _ -> assert false)
    and lower_address arr idx =
      let vi = lower_expr idx in
      let scaled = Builder.ibin b Ir.Shl (Ir.Reg vi) (Ir.Imm 3) in
      Builder.ibin b Ir.Add (Ir.Reg scaled) (Ir.Imm (Memlayout.base layout arr))
    and lower_shortcircuit ~is_and a c =
      let res = Builder.fresh b Ir.I64 in
      let va = lower_expr a in
      let rhs_blk = Builder.new_block b in
      let short_blk = Builder.new_block b in
      let end_blk = Builder.new_block b in
      if is_and then Builder.terminate b (Ir.CondBr (va, rhs_blk.Ir.id, short_blk.Ir.id))
      else Builder.terminate b (Ir.CondBr (va, short_blk.Ir.id, rhs_blk.Ir.id));
      Builder.position_at b rhs_blk;
      let vc = lower_expr c in
      let t = Builder.icmp b Ir.Ne (Ir.Reg vc) (Ir.Imm 0) in
      Builder.emit b (Ir.Mov (Ir.I64, res, t));
      Builder.terminate b (Ir.Br end_blk.Ir.id);
      Builder.position_at b short_blk;
      Builder.emit b (Ir.Iconst (res, if is_and then 0 else 1));
      Builder.terminate b (Ir.Br end_blk.Ir.id);
      Builder.position_at b end_blk;
      res
    in
    let rec lower_stmts stmts = List.iter lower_stmt stmts
    and lower_stmt (s : Ast.stmt) =
      if b.Builder.sealed then () (* unreachable code after return *)
      else
        match s.sdesc with
        | Ast.Let (name, _, e) ->
            let v = lower_expr e in
            let ty = Ir.reg_type b.Builder.func v in
            let slot = Builder.fresh b ty in
            Builder.emit b (Ir.Mov (ty, slot, v));
            declare env name slot
        | Ast.Assign (name, e) ->
            let v = lower_expr e in
            let slot = lookup env name in
            let ty = Ir.reg_type b.Builder.func slot in
            Builder.emit b (Ir.Mov (ty, slot, v))
        | Ast.AssignIdx (arr, idx, e) ->
            let v = lower_expr e in
            let addr = lower_address arr idx in
            Builder.store b (global_ty arr) addr v
        | Ast.Out e ->
            let v = lower_expr e in
            Builder.emit b (Ir.Call (None, "__out", [ v ]))
        | Ast.Return None -> Builder.terminate b (Ir.Ret None)
        | Ast.Return (Some e) ->
            let v = lower_expr e in
            Builder.terminate b (Ir.Ret (Some v))
        | Ast.ExprStmt e -> (
            match e.desc with
            | Ast.CallE (name, args) ->
                let argv = List.map lower_expr args in
                ignore (Builder.call b ~ret:None name argv)
            | _ -> ignore (lower_expr e))
        | Ast.If (c, thn, els) ->
            let vc = lower_expr c in
            let then_blk = Builder.new_block b in
            let else_blk = Builder.new_block b in
            let join_blk = Builder.new_block b in
            Builder.terminate b (Ir.CondBr (vc, then_blk.Ir.id, else_blk.Ir.id));
            Builder.position_at b then_blk;
            env.scopes <- [] :: env.scopes;
            lower_stmts thn;
            env.scopes <- List.tl env.scopes;
            Builder.terminate b (Ir.Br join_blk.Ir.id);
            Builder.position_at b else_blk;
            env.scopes <- [] :: env.scopes;
            lower_stmts els;
            env.scopes <- List.tl env.scopes;
            Builder.terminate b (Ir.Br join_blk.Ir.id);
            Builder.position_at b join_blk
        | Ast.While (c, body) ->
            let header = Builder.new_block b in
            Builder.terminate b (Ir.Br header.Ir.id);
            Builder.position_at b header;
            let vc = lower_expr c in
            let body_blk = Builder.new_block b in
            let exit_blk = Builder.new_block b in
            Builder.terminate b (Ir.CondBr (vc, body_blk.Ir.id, exit_blk.Ir.id));
            Builder.position_at b body_blk;
            env.scopes <- [] :: env.scopes;
            lower_stmts body;
            env.scopes <- List.tl env.scopes;
            Builder.terminate b (Ir.Br header.Ir.id);
            Builder.position_at b exit_blk
        | Ast.For (ivname, init, cmp, bound, step, body) ->
            let step_v =
              match Typecheck.const_eval step with Some v -> v | None -> assert false
            in
            let vinit = lower_expr init in
            let iv = Builder.fresh b Ir.I64 in
            Builder.emit b (Ir.Mov (Ir.I64, iv, vinit));
            (* bound evaluated once, in the preheader *)
            let bound_operand =
              match bound.Ast.desc with
              | Ast.Int v -> Ir.Imm v
              | _ -> Ir.Reg (lower_expr bound)
            in
            let header = Builder.new_block b in
            Builder.terminate b (Ir.Br header.Ir.id);
            Builder.position_at b header;
            let cmpop = match cmp with Ast.Lt -> Ir.Lt | Ast.Le -> Ir.Le | _ -> assert false in
            let vc = Builder.icmp b cmpop (Ir.Reg iv) bound_operand in
            let body_blk = Builder.new_block b in
            let exit_blk = Builder.new_block b in
            Builder.terminate b (Ir.CondBr (vc, body_blk.Ir.id, exit_blk.Ir.id));
            Builder.position_at b body_blk;
            env.scopes <- [ (ivname, iv) ] :: env.scopes;
            lower_stmts body;
            env.scopes <- List.tl env.scopes;
            (* latch: iv <- iv + step; br header *)
            if not b.Builder.sealed then begin
              let latch = Builder.new_block b in
              Builder.terminate b (Ir.Br latch.Ir.id);
              Builder.position_at b latch;
              Builder.emit b (Ir.Ibin (Ir.Add, iv, Ir.Reg iv, Ir.Imm step_v));
              Builder.terminate b (Ir.Br header.Ir.id)
            end;
            Builder.position_at b exit_blk
    in
    lower_stmts f.fn_body;
    Builder.terminate b (Ir.Ret None);
    let func = Builder.finish b in
    Ir.remove_unreachable func;
    func
  in
  let funcs = List.map (fun f -> (f.Ast.fn_name, lower_func f)) ast.funcs in
  { Ir.funcs; globals }
