open Emc_ir
(** Frontend facade: MiniC source text to verified IR. *)

type error = { msg : string; line : int; col : int }

let pp_error fmt e = Format.fprintf fmt "%d:%d: %s" e.line e.col e.msg

let compile (src : string) : (Ir.program, error) result =
  try
    let ast = Parser.parse_program src in
    Typecheck.check_program ast;
    let ir = Lower.lower_program ast in
    Verify.check_program ir;
    Ok ir
  with
  | Lexer.Error (msg, pos) -> Error { msg = "lexical error: " ^ msg; line = pos.line; col = pos.col }
  | Parser.Error (msg, pos) -> Error { msg = "parse error: " ^ msg; line = pos.line; col = pos.col }
  | Typecheck.Error (msg, pos) ->
      Error { msg = "type error: " ^ msg; line = pos.line; col = pos.col }
  | Failure msg -> Error { msg; line = 0; col = 0 }

let compile_exn src =
  match compile src with
  | Ok ir -> ir
  | Error e -> failwith (Format.asprintf "%a" pp_error e)
