(** Type checking for MiniC.

    Rules:
    - no implicit conversions; [int(e)] / [float(e)] convert explicitly;
    - [% << >> & | ^ && ||] require [int] operands;
    - comparisons require both operands of the same type and yield [int];
    - conditions ([if]/[while]/[for]) are [int] (non-zero means true);
    - [for] steps must be positive compile-time constants (this is what makes
      the loop recognizable as a canonical counted loop downstream);
    - a non-void function must return on all paths (checked syntactically:
      the body, or both arms of a trailing [if], end in [return]). *)

exception Error of string * Ast.pos

let err pos fmt = Printf.ksprintf (fun s -> raise (Error (s, pos))) fmt

type env = {
  globals : (string * Ast.ty) list;
  funcs : (string * (Ast.ty list * Ast.ty option)) list;
  mutable scopes : (string * Ast.ty) list list;
}

let lookup_var env pos name =
  let rec find = function
    | [] -> None
    | scope :: rest -> ( match List.assoc_opt name scope with Some t -> Some t | None -> find rest)
  in
  match find env.scopes with
  | Some t -> t
  | None -> err pos "unknown variable %s" name

let declare env pos name ty =
  match env.scopes with
  | scope :: rest ->
      if List.mem_assoc name scope then err pos "variable %s redeclared in the same scope" name;
      env.scopes <- ((name, ty) :: scope) :: rest
  | [] -> assert false

let push_scope env = env.scopes <- [] :: env.scopes
let pop_scope env = env.scopes <- List.tl env.scopes

(* Compile-time constant evaluation, used for [for] steps. *)
let rec const_eval (e : Ast.expr) : int option =
  match e.desc with
  | Ast.Int v -> Some v
  | Ast.Un (Ast.Neg, e) -> Option.map (fun v -> -v) (const_eval e)
  | Ast.Bin (op, a, b) -> (
      match (const_eval a, const_eval b) with
      | Some x, Some y -> (
          match op with
          | Ast.Add -> Some (x + y)
          | Ast.Sub -> Some (x - y)
          | Ast.Mul -> Some (x * y)
          | Ast.Div -> if y = 0 then None else Some (x / y)
          | Ast.Shl -> Some (x lsl (y land 63))
          | _ -> None)
      | _ -> None)
  | _ -> None

let rec check_expr env (e : Ast.expr) : Ast.ty =
  match e.desc with
  | Ast.Int _ -> Ast.Tint
  | Ast.Float _ -> Ast.Tfloat
  | Ast.Var name -> lookup_var env e.pos name
  | Ast.Index (name, idx) -> (
      if check_expr env idx <> Ast.Tint then err e.pos "array index must be int";
      match List.assoc_opt name env.globals with
      | Some t -> t
      | None -> err e.pos "unknown array %s" name)
  | Ast.CastInt e' ->
      ignore (check_expr env e');
      Ast.Tint
  | Ast.CastFloat e' ->
      ignore (check_expr env e');
      Ast.Tfloat
  | Ast.Un (Ast.Neg, e') -> check_expr env e'
  | Ast.Un (Ast.Not, e') ->
      if check_expr env e' <> Ast.Tint then err e.pos "! requires int operand";
      Ast.Tint
  | Ast.CallE (name, args) -> (
      match List.assoc_opt name env.funcs with
      | None -> err e.pos "unknown function %s" name
      | Some (ptys, ret) ->
          if List.length ptys <> List.length args then err e.pos "call %s: arity mismatch" name;
          List.iter2
            (fun pty a ->
              if check_expr env a <> pty then err a.Ast.pos "call %s: argument type mismatch" name)
            ptys args;
          (match ret with
          | Some t -> t
          | None -> err e.pos "void function %s used as a value" name))
  | Ast.Bin (op, a, b) -> (
      let ta = check_expr env a and tb = check_expr env b in
      match op with
      | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div ->
          if ta <> tb then err e.pos "operand types differ";
          ta
      | Ast.Rem | Ast.BAnd | Ast.BOr | Ast.BXor | Ast.Shl | Ast.Shr | Ast.LAnd | Ast.LOr ->
          if ta <> Ast.Tint || tb <> Ast.Tint then err e.pos "operator requires int operands";
          Ast.Tint
      | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
          if ta <> tb then err e.pos "comparison of different types";
          Ast.Tint)

let rec check_stmt env ~ret (s : Ast.stmt) =
  match s.sdesc with
  | Ast.Let (name, ty_ann, e) ->
      let t = check_expr env e in
      (match ty_ann with
      | Some t' when t' <> t -> err s.spos "let %s: annotation does not match initializer" name
      | _ -> ());
      declare env s.spos name t
  | Ast.Assign (name, e) ->
      let tv = lookup_var env s.spos name in
      if check_expr env e <> tv then err s.spos "assignment to %s: type mismatch" name
  | Ast.AssignIdx (name, idx, e) -> (
      if check_expr env idx <> Ast.Tint then err s.spos "array index must be int";
      match List.assoc_opt name env.globals with
      | None -> err s.spos "unknown array %s" name
      | Some t -> if check_expr env e <> t then err s.spos "store to %s: type mismatch" name)
  | Ast.If (c, thn, els) ->
      if check_expr env c <> Ast.Tint then err s.spos "condition must be int";
      push_scope env;
      List.iter (check_stmt env ~ret) thn;
      pop_scope env;
      push_scope env;
      List.iter (check_stmt env ~ret) els;
      pop_scope env
  | Ast.While (c, body) ->
      if check_expr env c <> Ast.Tint then err s.spos "condition must be int";
      push_scope env;
      List.iter (check_stmt env ~ret) body;
      pop_scope env
  | Ast.For (iv, init, _cmp, bound, step, body) ->
      if check_expr env init <> Ast.Tint then err s.spos "for: init must be int";
      (match const_eval step with
      | Some v when v > 0 -> ()
      | Some _ -> err s.spos "for: step must be positive"
      | None -> err s.spos "for: step must be a compile-time constant");
      push_scope env;
      declare env s.spos iv Ast.Tint;
      if check_expr env bound <> Ast.Tint then err s.spos "for: bound must be int";
      push_scope env;
      List.iter (check_stmt env ~ret) body;
      pop_scope env;
      pop_scope env
  | Ast.Return None -> if ret <> None then err s.spos "missing return value"
  | Ast.Return (Some e) -> (
      match ret with
      | None -> err s.spos "void function returns a value"
      | Some t -> if check_expr env e <> t then err s.spos "return type mismatch")
  | Ast.ExprStmt ({ desc = Ast.CallE _; _ } as e) -> (
      match e.desc with
      | Ast.CallE (name, args) -> (
          match List.assoc_opt name env.funcs with
          | None -> err s.spos "unknown function %s" name
          | Some (ptys, _) ->
              if List.length ptys <> List.length args then err s.spos "call %s: arity mismatch" name;
              List.iter2
                (fun pty a ->
                  if check_expr env a <> pty then err a.Ast.pos "argument type mismatch")
                ptys args)
      | _ -> assert false)
  | Ast.ExprStmt e -> ignore (check_expr env e)
  | Ast.Out e -> ignore (check_expr env e)

(* Syntactic all-paths-return check. *)
let rec returns (stmts : Ast.stmt list) =
  match List.rev stmts with
  | [] -> false
  | last :: _ -> (
      match last.sdesc with
      | Ast.Return _ -> true
      | Ast.If (_, thn, els) -> returns thn && returns els
      | _ -> false)

let check_program (p : Ast.program) =
  let globals = List.map (fun (g : Ast.global) -> (g.g_name, g.g_ty)) p.globals in
  List.iter
    (fun (g : Ast.global) ->
      if g.g_size <= 0 then err g.g_pos "array %s must have positive size" g.g_name)
    p.globals;
  let funcs =
    List.map (fun (f : Ast.func) -> (f.fn_name, (List.map snd f.fn_params, f.fn_ret))) p.funcs
  in
  List.iter
    (fun (f : Ast.func) ->
      if List.length f.fn_params > 6 then err f.fn_pos "at most 6 parameters supported";
      let env = { globals; funcs; scopes = [ [] ] } in
      List.iter (fun (n, t) -> declare env f.fn_pos n t) f.fn_params;
      List.iter (check_stmt env ~ret:f.fn_ret) f.fn_body;
      if f.fn_ret <> None && not (returns f.fn_body) then
        err f.fn_pos "function %s may not return a value on all paths" f.fn_name)
    p.funcs;
  match List.find_opt (fun (f : Ast.func) -> f.fn_name = "main") p.funcs with
  | None -> failwith "typecheck: program has no main function"
  | Some f -> if f.fn_params <> [] then err f.fn_pos "main takes no parameters"
