(** Frontend facade: MiniC source text to verified IR.

    MiniC is the small C-like language the benchmark workloads are written
    in: [int] (64-bit) and [float] (double) scalars, fixed-size global
    arrays, functions with up to six by-value parameters, [if]/[while] and a
    canonical counted [for] loop, short-circuit [&&]/[||], explicit
    [int()]/[float()] casts, and an [out(e)] intrinsic that appends to the
    program's observable output (the checksum trace differential tests
    compare across compiler configurations). *)

type error = { msg : string; line : int; col : int }

val pp_error : Format.formatter -> error -> unit

val compile : string -> (Emc_ir.Ir.program, error) result
(** Lex, parse, typecheck, lower and verify. *)

val compile_exn : string -> Emc_ir.Ir.program
(** Like {!compile}; raises [Failure] with a rendered message. *)
