(** Hand-written lexer for MiniC. *)

type token =
  | INT of int
  | FLOAT of float
  | IDENT of string
  | KW of string  (** fn let if else while for return int float out *)
  | PUNCT of string  (** operators and separators *)
  | EOF

type loc_token = { tok : token; pos : Ast.pos }

exception Error of string * Ast.pos

let keywords = [ "fn"; "let"; "if"; "else"; "while"; "for"; "return"; "int"; "float"; "out" ]

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_alpha c || is_digit c

let tokenize (src : string) : loc_token list =
  let n = String.length src in
  let line = ref 1 and col = ref 1 in
  let i = ref 0 in
  let toks = ref [] in
  let pos () = { Ast.line = !line; col = !col } in
  let advance k =
    for _ = 1 to k do
      if !i < n && src.[!i] = '\n' then begin
        incr line;
        col := 1
      end
      else incr col;
      incr i
    done
  in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  let push tok p = toks := { tok; pos = p } :: !toks in
  while !i < n do
    let c = src.[!i] in
    let p = pos () in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance 1
    else if c = '/' && peek 1 = Some '/' then begin
      while !i < n && src.[!i] <> '\n' do
        advance 1
      done
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do
        advance 1
      done;
      if
        !i < n && src.[!i] = '.'
        && match peek 1 with Some d -> is_digit d | None -> false
      then begin
        advance 1;
        while !i < n && is_digit src.[!i] do
          advance 1
        done;
        (* optional exponent *)
        if !i < n && (src.[!i] = 'e' || src.[!i] = 'E') then begin
          advance 1;
          if !i < n && (src.[!i] = '+' || src.[!i] = '-') then advance 1;
          while !i < n && is_digit src.[!i] do
            advance 1
          done
        end;
        push (FLOAT (float_of_string (String.sub src start (!i - start)))) p
      end
      else push (INT (int_of_string (String.sub src start (!i - start)))) p
    end
    else if is_alpha c then begin
      let start = !i in
      while !i < n && is_alnum src.[!i] do
        advance 1
      done;
      let s = String.sub src start (!i - start) in
      if List.mem s keywords then push (KW s) p else push (IDENT s) p
    end
    else begin
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      match two with
      | "->" | "==" | "!=" | "<=" | ">=" | "&&" | "||" | "<<" | ">>" ->
          push (PUNCT two) p;
          advance 2
      | _ -> (
          match c with
          | '+' | '-' | '*' | '/' | '%' | '&' | '|' | '^' | '<' | '>' | '!' | '=' | '(' | ')'
          | '{' | '}' | '[' | ']' | ';' | ',' | ':' ->
              push (PUNCT (String.make 1 c)) p;
              advance 1
          | _ -> raise (Error (Printf.sprintf "unexpected character %C" c, p)))
    end
  done;
  push EOF (pos ());
  List.rev !toks
