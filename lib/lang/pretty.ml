(** MiniC pretty-printer: AST back to parseable source text.

    [program] is the inverse of the frontend for every AST the frontend can
    produce (and for the ASTs {!Emc_diff} generates): re-lexing, re-parsing
    and re-typechecking the output yields the same program. Expressions are
    fully parenthesized, so operator precedence never has to be reproduced;
    [for] statements are printed in the exact canonical shape the parser
    demands. The differential fuzzer relies on this round trip to drive
    generated programs through the whole frontend, and reports
    counterexamples as source text a human can re-run. *)

let buf_add = Buffer.add_string

(* A float literal the lexer accepts: digits '.' digits with an optional
   exponent. [%.17g] round-trips doubles exactly but may print "1e+22"
   (no dot) or "5" (integral), neither of which lexes as a FLOAT. *)
let float_lit v =
  if not (Float.is_finite v) then
    invalid_arg "Pretty.float_lit: nan/infinite literals are not expressible in MiniC"
  else
    let s = Printf.sprintf "%.17g" v in
    match String.index_opt s 'e' with
    | Some e when not (String.contains s '.') ->
        String.sub s 0 e ^ ".0" ^ String.sub s e (String.length s - e)
    | _ -> if String.contains s '.' then s else s ^ ".0"

let binop_str = function
  | Ast.Add -> "+" | Ast.Sub -> "-" | Ast.Mul -> "*" | Ast.Div -> "/" | Ast.Rem -> "%"
  | Ast.BAnd -> "&" | Ast.BOr -> "|" | Ast.BXor -> "^" | Ast.Shl -> "<<" | Ast.Shr -> ">>"
  | Ast.Eq -> "==" | Ast.Ne -> "!=" | Ast.Lt -> "<" | Ast.Le -> "<=" | Ast.Gt -> ">"
  | Ast.Ge -> ">=" | Ast.LAnd -> "&&" | Ast.LOr -> "||"

let rec expr b (e : Ast.expr) =
  match e.desc with
  | Ast.Int v ->
      (* negative literals print through unary minus so the lexer sees a
         plain digit token *)
      if v < 0 then begin
        buf_add b "(-";
        buf_add b (string_of_int (abs v));
        buf_add b ")"
      end
      else buf_add b (string_of_int v)
  | Ast.Float v ->
      if v < 0.0 || (v = 0.0 && 1.0 /. v < 0.0) then begin
        buf_add b "(-";
        buf_add b (float_lit (-.v));
        buf_add b ")"
      end
      else buf_add b (float_lit v)
  | Ast.Var n -> buf_add b n
  | Ast.Index (a, i) ->
      buf_add b a;
      buf_add b "[";
      expr b i;
      buf_add b "]"
  | Ast.Bin (op, x, y) ->
      buf_add b "(";
      expr b x;
      buf_add b (" " ^ binop_str op ^ " ");
      expr b y;
      buf_add b ")"
  | Ast.Un (Ast.Neg, x) ->
      buf_add b "(-";
      expr b x;
      buf_add b ")"
  | Ast.Un (Ast.Not, x) ->
      buf_add b "(!";
      expr b x;
      buf_add b ")"
  | Ast.CallE (f, args) ->
      buf_add b f;
      buf_add b "(";
      List.iteri
        (fun i a ->
          if i > 0 then buf_add b ", ";
          expr b a)
        args;
      buf_add b ")"
  | Ast.CastInt x ->
      buf_add b "int(";
      expr b x;
      buf_add b ")"
  | Ast.CastFloat x ->
      buf_add b "float(";
      expr b x;
      buf_add b ")"

let ty_str = function Ast.Tint -> "int" | Ast.Tfloat -> "float"

let indent b n = buf_add b (String.make (2 * n) ' ')

let rec stmt b lvl (s : Ast.stmt) =
  indent b lvl;
  match s.sdesc with
  | Ast.Let (n, ann, e) ->
      buf_add b ("let " ^ n);
      (match ann with Some t -> buf_add b (": " ^ ty_str t) | None -> ());
      buf_add b " = ";
      expr b e;
      buf_add b ";\n"
  | Ast.Assign (n, e) ->
      buf_add b (n ^ " = ");
      expr b e;
      buf_add b ";\n"
  | Ast.AssignIdx (a, i, e) ->
      buf_add b a;
      buf_add b "[";
      expr b i;
      buf_add b "] = ";
      expr b e;
      buf_add b ";\n"
  | Ast.If (c, thn, els) ->
      buf_add b "if (";
      expr b c;
      buf_add b ") {\n";
      block b lvl thn;
      indent b lvl;
      buf_add b "}";
      if els <> [] then begin
        buf_add b " else {\n";
        block b lvl els;
        indent b lvl;
        buf_add b "}"
      end;
      buf_add b "\n"
  | Ast.While (c, body) ->
      buf_add b "while (";
      expr b c;
      buf_add b ") {\n";
      block b lvl body;
      indent b lvl;
      buf_add b "}\n"
  | Ast.For (iv, init, cmp, bound, step, body) ->
      buf_add b ("for (" ^ iv ^ " = ");
      expr b init;
      buf_add b ("; " ^ iv ^ " " ^ binop_str cmp ^ " ");
      expr b bound;
      buf_add b ("; " ^ iv ^ " = " ^ iv ^ " + ");
      expr b step;
      buf_add b ") {\n";
      block b lvl body;
      indent b lvl;
      buf_add b "}\n"
  | Ast.Return None -> buf_add b "return;\n"
  | Ast.Return (Some e) ->
      buf_add b "return ";
      expr b e;
      buf_add b ";\n"
  | Ast.ExprStmt e ->
      expr b e;
      buf_add b ";\n"
  | Ast.Out e ->
      buf_add b "out(";
      expr b e;
      buf_add b ");\n"

and block b lvl stmts = List.iter (stmt b (lvl + 1)) stmts

let func b (f : Ast.func) =
  buf_add b ("fn " ^ f.fn_name ^ "(");
  List.iteri
    (fun i (n, t) ->
      if i > 0 then buf_add b ", ";
      buf_add b (n ^ ": " ^ ty_str t))
    f.fn_params;
  buf_add b ")";
  (match f.fn_ret with Some t -> buf_add b (" -> " ^ ty_str t) | None -> ());
  buf_add b " {\n";
  block b 0 f.fn_body;
  buf_add b "}\n"

let program (p : Ast.program) : string =
  let b = Buffer.create 1024 in
  List.iter
    (fun (g : Ast.global) ->
      buf_add b (Printf.sprintf "%s %s[%d];\n" (ty_str g.g_ty) g.g_name g.g_size))
    p.globals;
  List.iter
    (fun f ->
      buf_add b "\n";
      func b f)
    p.funcs;
  Buffer.contents b
