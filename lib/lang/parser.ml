(** Recursive-descent parser for MiniC.

    Precedence (loosest to tightest):
    [||] < [&&] < [|] < [^] < [&] < [== !=] < [< <= > >=] < [<< >>]
    < [+ -] < [* / %] < unary [- !] < primary. *)

exception Error of string * Ast.pos

type state = { mutable toks : Lexer.loc_token list }

let peek st = match st.toks with [] -> assert false | t :: _ -> t

let next st =
  let t = peek st in
  (match st.toks with [] -> () | _ :: rest -> st.toks <- rest);
  t

let err st msg = raise (Error (msg, (peek st).pos))

let expect_punct st s =
  match next st with
  | { tok = Lexer.PUNCT p; _ } when p = s -> ()
  | { pos; _ } -> raise (Error (Printf.sprintf "expected %S" s, pos))

let expect_kw st s =
  match next st with
  | { tok = Lexer.KW k; _ } when k = s -> ()
  | { pos; _ } -> raise (Error (Printf.sprintf "expected keyword %S" s, pos))

let expect_ident st =
  match next st with
  | { tok = Lexer.IDENT s; _ } -> s
  | { pos; _ } -> raise (Error ("expected identifier", pos))

let accept_punct st s =
  match (peek st).tok with
  | Lexer.PUNCT p when p = s ->
      ignore (next st);
      true
  | _ -> false

let parse_ty st =
  match next st with
  | { tok = Lexer.KW "int"; _ } -> Ast.Tint
  | { tok = Lexer.KW "float"; _ } -> Ast.Tfloat
  | { pos; _ } -> raise (Error ("expected type", pos))

(* binary operator table: (token, ast op) per precedence level *)
let levels : (string * Ast.binop) list list =
  [
    [ ("||", Ast.LOr) ];
    [ ("&&", Ast.LAnd) ];
    [ ("|", Ast.BOr) ];
    [ ("^", Ast.BXor) ];
    [ ("&", Ast.BAnd) ];
    [ ("==", Ast.Eq); ("!=", Ast.Ne) ];
    [ ("<", Ast.Lt); ("<=", Ast.Le); (">", Ast.Gt); (">=", Ast.Ge) ];
    [ ("<<", Ast.Shl); (">>", Ast.Shr) ];
    [ ("+", Ast.Add); ("-", Ast.Sub) ];
    [ ("*", Ast.Mul); ("/", Ast.Div); ("%", Ast.Rem) ];
  ]

let rec parse_expr st = parse_level st levels

and parse_level st = function
  | [] -> parse_unary st
  | ops :: rest ->
      let lhs = ref (parse_level st rest) in
      let continue = ref true in
      while !continue do
        match (peek st).tok with
        | Lexer.PUNCT p when List.mem_assoc p ops ->
            let pos = (peek st).pos in
            ignore (next st);
            let rhs = parse_level st rest in
            lhs := { Ast.desc = Ast.Bin (List.assoc p ops, !lhs, rhs); pos }
        | _ -> continue := false
      done;
      !lhs

and parse_unary st =
  let t = peek st in
  match t.tok with
  | Lexer.PUNCT "-" ->
      ignore (next st);
      let e = parse_unary st in
      { Ast.desc = Ast.Un (Ast.Neg, e); pos = t.pos }
  | Lexer.PUNCT "!" ->
      ignore (next st);
      let e = parse_unary st in
      { Ast.desc = Ast.Un (Ast.Not, e); pos = t.pos }
  | _ -> parse_primary st

and parse_primary st =
  let t = next st in
  match t.tok with
  | Lexer.INT v -> { Ast.desc = Ast.Int v; pos = t.pos }
  | Lexer.FLOAT v -> { Ast.desc = Ast.Float v; pos = t.pos }
  | Lexer.PUNCT "(" ->
      let e = parse_expr st in
      expect_punct st ")";
      e
  | Lexer.KW "int" ->
      expect_punct st "(";
      let e = parse_expr st in
      expect_punct st ")";
      { Ast.desc = Ast.CastInt e; pos = t.pos }
  | Lexer.KW "float" ->
      expect_punct st "(";
      let e = parse_expr st in
      expect_punct st ")";
      { Ast.desc = Ast.CastFloat e; pos = t.pos }
  | Lexer.IDENT name -> (
      match (peek st).tok with
      | Lexer.PUNCT "(" ->
          ignore (next st);
          let args = parse_args st in
          { Ast.desc = Ast.CallE (name, args); pos = t.pos }
      | Lexer.PUNCT "[" ->
          ignore (next st);
          let idx = parse_expr st in
          expect_punct st "]";
          { Ast.desc = Ast.Index (name, idx); pos = t.pos }
      | _ -> { Ast.desc = Ast.Var name; pos = t.pos })
  | _ -> raise (Error ("expected expression", t.pos))

and parse_args st =
  if accept_punct st ")" then []
  else
    let rec loop acc =
      let e = parse_expr st in
      if accept_punct st "," then loop (e :: acc)
      else begin
        expect_punct st ")";
        List.rev (e :: acc)
      end
    in
    loop []

let rec parse_block st =
  expect_punct st "{";
  let rec loop acc =
    if accept_punct st "}" then List.rev acc else loop (parse_stmt st :: acc)
  in
  loop []

and parse_stmt st : Ast.stmt =
  let t = peek st in
  let mk sdesc = { Ast.sdesc; spos = t.pos } in
  match t.tok with
  | Lexer.KW "let" ->
      ignore (next st);
      let name = expect_ident st in
      let ty = if accept_punct st ":" then Some (parse_ty st) else None in
      expect_punct st "=";
      let e = parse_expr st in
      expect_punct st ";";
      mk (Ast.Let (name, ty, e))
  | Lexer.KW "out" ->
      ignore (next st);
      expect_punct st "(";
      let e = parse_expr st in
      expect_punct st ")";
      expect_punct st ";";
      mk (Ast.Out e)
  | Lexer.KW "return" ->
      ignore (next st);
      if accept_punct st ";" then mk (Ast.Return None)
      else
        let e = parse_expr st in
        expect_punct st ";";
        mk (Ast.Return (Some e))
  | Lexer.KW "if" ->
      ignore (next st);
      expect_punct st "(";
      let c = parse_expr st in
      expect_punct st ")";
      let thn = parse_block st in
      let els =
        match (peek st).tok with
        | Lexer.KW "else" -> (
            ignore (next st);
            match (peek st).tok with
            | Lexer.KW "if" -> [ parse_stmt st ]
            | _ -> parse_block st)
        | _ -> []
      in
      mk (Ast.If (c, thn, els))
  | Lexer.KW "while" ->
      ignore (next st);
      expect_punct st "(";
      let c = parse_expr st in
      expect_punct st ")";
      let body = parse_block st in
      mk (Ast.While (c, body))
  | Lexer.KW "for" ->
      ignore (next st);
      expect_punct st "(";
      let iv = expect_ident st in
      expect_punct st "=";
      let init = parse_expr st in
      expect_punct st ";";
      let iv2 = expect_ident st in
      if iv2 <> iv then err st "for: test must compare the loop variable";
      let cmp =
        match (next st).tok with
        | Lexer.PUNCT "<" -> Ast.Lt
        | Lexer.PUNCT "<=" -> Ast.Le
        | _ -> err st "for: comparison must be < or <="
      in
      let bound = parse_expr st in
      expect_punct st ";";
      let iv3 = expect_ident st in
      if iv3 <> iv then err st "for: step must update the loop variable";
      expect_punct st "=";
      let iv4 = expect_ident st in
      if iv4 <> iv then err st "for: step must be i = i + <step>";
      expect_punct st "+";
      let step = parse_expr st in
      expect_punct st ")";
      let body = parse_block st in
      mk (Ast.For (iv, init, cmp, bound, step, body))
  | Lexer.IDENT name -> (
      ignore (next st);
      match (peek st).tok with
      | Lexer.PUNCT "=" ->
          ignore (next st);
          let e = parse_expr st in
          expect_punct st ";";
          mk (Ast.Assign (name, e))
      | Lexer.PUNCT "[" ->
          ignore (next st);
          let idx = parse_expr st in
          expect_punct st "]";
          if accept_punct st "=" then begin
            let e = parse_expr st in
            expect_punct st ";";
            mk (Ast.AssignIdx (name, idx, e))
          end
          else err st "array expression cannot stand alone as a statement"
      | Lexer.PUNCT "(" ->
          ignore (next st);
          let args = parse_args st in
          expect_punct st ";";
          mk (Ast.ExprStmt { Ast.desc = Ast.CallE (name, args); pos = t.pos })
      | _ -> err st "expected statement")
  | _ -> raise (Error ("expected statement", t.pos))

let parse_decl st (globals, funcs) =
  let t = peek st in
  match t.tok with
  | Lexer.KW ("int" | "float") ->
      let g_ty = parse_ty st in
      let g_name = expect_ident st in
      expect_punct st "[";
      let size =
        match next st with
        | { tok = Lexer.INT v; _ } -> v
        | { pos; _ } -> raise (Error ("expected array size", pos))
      in
      expect_punct st "]";
      expect_punct st ";";
      ({ Ast.g_name; g_ty; g_size = size; g_pos = t.pos } :: globals, funcs)
  | Lexer.KW "fn" ->
      ignore (next st);
      let fn_name = expect_ident st in
      expect_punct st "(";
      let params =
        if accept_punct st ")" then []
        else
          let rec loop acc =
            let pname = expect_ident st in
            expect_punct st ":";
            let pty = parse_ty st in
            if accept_punct st "," then loop ((pname, pty) :: acc)
            else begin
              expect_punct st ")";
              List.rev ((pname, pty) :: acc)
            end
          in
          loop []
      in
      let fn_ret = if accept_punct st "->" then Some (parse_ty st) else None in
      let fn_body = parse_block st in
      (globals, { Ast.fn_name; fn_params = params; fn_ret; fn_body; fn_pos = t.pos } :: funcs)
  | _ -> raise (Error ("expected declaration (global array or fn)", t.pos))

let parse_program (src : string) : Ast.program =
  let st = { toks = Lexer.tokenize src } in
  let rec loop acc =
    match (peek st).tok with Lexer.EOF -> acc | _ -> loop (parse_decl st acc)
  in
  let globals, funcs = loop ([], []) in
  { Ast.globals = List.rev globals; funcs = List.rev funcs }
