type t = { r : int; c : int; a : float array }

let create r c =
  if r <= 0 || c <= 0 then invalid_arg "Mat.create: non-positive dimension";
  { r; c; a = Array.make (r * c) 0.0 }

let init r c f =
  let m = create r c in
  for i = 0 to r - 1 do
    for j = 0 to c - 1 do
      m.a.((i * c) + j) <- f i j
    done
  done;
  m

let identity n = init n n (fun i j -> if i = j then 1.0 else 0.0)

let of_rows rows =
  let r = Array.length rows in
  if r = 0 then invalid_arg "Mat.of_rows: no rows";
  let c = Array.length rows.(0) in
  if c = 0 then invalid_arg "Mat.of_rows: empty row";
  Array.iter (fun row -> if Array.length row <> c then invalid_arg "Mat.of_rows: ragged rows") rows;
  init r c (fun i j -> rows.(i).(j))

let rows m = m.r
let cols m = m.c
let get m i j = m.a.((i * m.c) + j)
let set m i j v = m.a.((i * m.c) + j) <- v
let copy m = { m with a = Array.copy m.a }
let row m i = Array.sub m.a (i * m.c) m.c
let col m j = Array.init m.r (fun i -> get m i j)
let to_rows m = Array.init m.r (row m)

let transpose m = init m.c m.r (fun i j -> get m j i)

let mul x y =
  if x.c <> y.r then invalid_arg "Mat.mul: dimension mismatch";
  let z = create x.r y.c in
  for i = 0 to x.r - 1 do
    for k = 0 to x.c - 1 do
      let xik = get x i k in
      if xik <> 0.0 then
        for j = 0 to y.c - 1 do
          z.a.((i * z.c) + j) <- z.a.((i * z.c) + j) +. (xik *. get y k j)
        done
    done
  done;
  z

let map2 f x y =
  if x.r <> y.r || x.c <> y.c then invalid_arg "Mat.map2: dimension mismatch";
  { x with a = Array.init (Array.length x.a) (fun i -> f x.a.(i) y.a.(i)) }

let add = map2 ( +. )
let sub = map2 ( -. )
let scale s m = { m with a = Array.map (fun x -> s *. x) m.a }

let mul_vec m v =
  if m.c <> Array.length v then invalid_arg "Mat.mul_vec: dimension mismatch";
  Array.init m.r (fun i ->
      let acc = ref 0.0 in
      for j = 0 to m.c - 1 do
        acc := !acc +. (get m i j *. v.(j))
      done;
      !acc)

let gram x =
  let g = create x.c x.c in
  for i = 0 to x.c - 1 do
    for j = i to x.c - 1 do
      let acc = ref 0.0 in
      for k = 0 to x.r - 1 do
        acc := !acc +. (get x k i *. get x k j)
      done;
      set g i j !acc;
      set g j i !acc
    done
  done;
  g

(* LU decomposition with partial pivoting, in place on a copy.
   Returns (lu, perm, sign) or None if singular. *)
let lu_decompose m =
  if m.r <> m.c then invalid_arg "Mat: square matrix required";
  let n = m.r in
  let lu = copy m in
  let perm = Array.init n Fun.id in
  let sign = ref 1.0 in
  let singular = ref false in
  (try
     for k = 0 to n - 1 do
       (* pivot *)
       let pivot = ref k in
       for i = k + 1 to n - 1 do
         if Float.abs (get lu i k) > Float.abs (get lu !pivot k) then pivot := i
       done;
       if !pivot <> k then begin
         for j = 0 to n - 1 do
           let tmp = get lu k j in
           set lu k j (get lu !pivot j);
           set lu !pivot j tmp
         done;
         let tmp = perm.(k) in
         perm.(k) <- perm.(!pivot);
         perm.(!pivot) <- tmp;
         sign := -. !sign
       end;
       let pkk = get lu k k in
       if Float.abs pkk < 1e-300 then begin
         singular := true;
         raise Exit
       end;
       for i = k + 1 to n - 1 do
         let f = get lu i k /. pkk in
         set lu i k f;
         for j = k + 1 to n - 1 do
           set lu i j (get lu i j -. (f *. get lu k j))
         done
       done
     done
   with Exit -> ());
  if !singular then None else Some (lu, perm, !sign)

let lu_det m =
  match lu_decompose m with
  | None -> 0.0
  | Some (lu, _, sign) ->
      let d = ref sign in
      for i = 0 to lu.r - 1 do
        d := !d *. get lu i i
      done;
      !d

let log_det m =
  match lu_decompose m with
  | None -> neg_infinity
  | Some (lu, _, _) ->
      let d = ref 0.0 in
      (try
         for i = 0 to lu.r - 1 do
           let p = Float.abs (get lu i i) in
           if p = 0.0 then raise Exit;
           d := !d +. log p
         done
       with Exit -> d := neg_infinity);
      !d

let lu_solve (lu, perm, _sign) b =
  let n = lu.r in
  let y = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let acc = ref b.(perm.(i)) in
    for j = 0 to i - 1 do
      acc := !acc -. (get lu i j *. y.(j))
    done;
    y.(i) <- !acc
  done;
  let x = Array.make n 0.0 in
  for i = n - 1 downto 0 do
    let acc = ref y.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (get lu i j *. x.(j))
    done;
    x.(i) <- !acc /. get lu i i
  done;
  x

let solve m b =
  if m.r <> Array.length b then invalid_arg "Mat.solve: dimension mismatch";
  match lu_decompose m with
  | None -> failwith "Mat.solve: singular matrix"
  | Some lu -> lu_solve lu b

let inverse m =
  match lu_decompose m with
  | None -> failwith "Mat.inverse: singular matrix"
  | Some lu ->
      let n = m.r in
      let inv = create n n in
      for j = 0 to n - 1 do
        let e = Array.make n 0.0 in
        e.(j) <- 1.0;
        let x = lu_solve lu e in
        for i = 0 to n - 1 do
          set inv i j x.(i)
        done
      done;
      inv

let cholesky m =
  if m.r <> m.c then invalid_arg "Mat.cholesky: square matrix required";
  let n = m.r in
  let l = create n n in
  for i = 0 to n - 1 do
    for j = 0 to i do
      let acc = ref (get m i j) in
      for k = 0 to j - 1 do
        acc := !acc -. (get l i k *. get l j k)
      done;
      if i = j then begin
        if !acc <= 0.0 then failwith "Mat.cholesky: matrix not positive definite";
        set l i i (sqrt !acc)
      end
      else set l i j (!acc /. get l j j)
    done
  done;
  l

let solve_spd m b =
  let l = cholesky m in
  let n = rows m in
  let y = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let acc = ref b.(i) in
    for j = 0 to i - 1 do
      acc := !acc -. (get l i j *. y.(j))
    done;
    y.(i) <- !acc /. get l i i
  done;
  let x = Array.make n 0.0 in
  for i = n - 1 downto 0 do
    let acc = ref y.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (get l j i *. x.(j))
    done;
    x.(i) <- !acc /. get l i i
  done;
  x

(* Householder QR least squares. Handles rank deficiency by zeroing
   coefficients of dependent columns. *)
let lstsq a b =
  let m = a.r and n = a.c in
  if m <> Array.length b then invalid_arg "Mat.lstsq: dimension mismatch";
  let r = copy a in
  let qtb = Array.copy b in
  let diag_ok = Array.make n true in
  let kmax = Stdlib.min m n in
  for k = 0 to kmax - 1 do
    (* Householder vector for column k below row k. *)
    let norm = ref 0.0 in
    for i = k to m - 1 do
      let x = get r i k in
      norm := !norm +. (x *. x)
    done;
    let norm = sqrt !norm in
    if norm < 1e-12 then diag_ok.(k) <- false
    else begin
      let alpha = if get r k k > 0.0 then -.norm else norm in
      let v = Array.make (m - k) 0.0 in
      v.(0) <- get r k k -. alpha;
      for i = k + 1 to m - 1 do
        v.(i - k) <- get r i k
      done;
      let vnorm2 = ref 0.0 in
      Array.iter (fun x -> vnorm2 := !vnorm2 +. (x *. x)) v;
      if !vnorm2 > 1e-300 then begin
        (* apply H = I - 2 v vᵀ / (vᵀv) to remaining columns of r and to qtb *)
        for j = k to n - 1 do
          let dot = ref 0.0 in
          for i = k to m - 1 do
            dot := !dot +. (v.(i - k) *. get r i j)
          done;
          let f = 2.0 *. !dot /. !vnorm2 in
          for i = k to m - 1 do
            set r i j (get r i j -. (f *. v.(i - k)))
          done
        done;
        let dot = ref 0.0 in
        for i = k to m - 1 do
          dot := !dot +. (v.(i - k) *. qtb.(i))
        done;
        let f = 2.0 *. !dot /. !vnorm2 in
        for i = k to m - 1 do
          qtb.(i) <- qtb.(i) -. (f *. v.(i - k))
        done
      end;
      set r k k alpha;
      if Float.abs alpha < 1e-10 then diag_ok.(k) <- false
    end
  done;
  (* back substitution on the upper triangle *)
  let x = Array.make n 0.0 in
  for i = kmax - 1 downto 0 do
    if diag_ok.(i) then begin
      let acc = ref qtb.(i) in
      for j = i + 1 to n - 1 do
        acc := !acc -. (get r i j *. x.(j))
      done;
      x.(i) <- !acc /. get r i i
    end
  done;
  x

let equal ?(eps = 1e-9) x y =
  x.r = y.r && x.c = y.c
  && Array.for_all2 (fun a b -> Float.abs (a -. b) <= eps) x.a y.a

let pp fmt m =
  for i = 0 to m.r - 1 do
    Format.fprintf fmt "[";
    for j = 0 to m.c - 1 do
      Format.fprintf fmt " %+.4g" (get m i j)
    done;
    Format.fprintf fmt " ]@\n"
  done
