(** Dense row-major matrices over [float].

    Sized for the regression pipeline: a few hundred rows (design points) by a
    few hundred columns (model terms). All operations are straightforward
    O(n^3)-or-better dense algorithms with partial pivoting where relevant. *)

type t

val create : int -> int -> t
(** [create r c] is the r-by-c zero matrix. *)

val init : int -> int -> (int -> int -> float) -> t
val identity : int -> t
val of_rows : float array array -> t
(** Copies its input; rows must be non-empty and of equal length. *)

val to_rows : t -> float array array
val copy : t -> t

val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit

val row : t -> int -> float array
(** Fresh copy of a row. *)

val col : t -> int -> float array

val transpose : t -> t
val mul : t -> t -> t
val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val mul_vec : t -> float array -> float array

val gram : t -> t
(** [gram x] is [xᵀx], computed symmetrically. *)

val lu_det : t -> float
(** Determinant via LU with partial pivoting. Square only. *)

val log_det : t -> float
(** Log of |det| for a square matrix; [neg_infinity] when singular. Preferred
    over {!lu_det} inside D-optimal search, where determinants overflow. *)

val solve : t -> float array -> float array
(** [solve a b] solves the square system [a x = b] by LU with partial
    pivoting. Raises [Failure] on a (numerically) singular matrix. *)

val inverse : t -> t
(** Raises [Failure] on a singular matrix. *)

val cholesky : t -> t
(** Lower-triangular Cholesky factor of a symmetric positive-definite matrix.
    Raises [Failure] if the matrix is not positive definite. *)

val solve_spd : t -> float array -> float array
(** Solve an SPD system via Cholesky. *)

val lstsq : t -> float array -> float array
(** [lstsq a b] is the minimum-residual solution of the (possibly
    overdetermined) system [a x ≈ b], via Householder QR with column checks.
    Rank-deficient columns receive coefficient 0. *)

val equal : ?eps:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
