(** Zero-dependency process-level parallel map.

    [map f xs] fans the elements of [xs] out across [jobs] forked worker
    processes (Unix.fork + one pipe per worker + Marshal) and returns the
    results in input order — observationally identical to [Array.map f xs]
    for a pure [f]. Fork-based workers are the safe choice here: the
    process-global metrics registry and the [Measure] memo tables are
    copy-on-write duplicated into each child, so [f] may freely read and
    mutate them without races; child-side mutations are discarded when the
    worker exits and callers merge whatever they need from the returned
    values.

    Workers never run the parent's [at_exit] handlers (they leave with
    [Unix._exit]), so inherited trace buffers and stdio are not flushed
    twice. A worker that raises, dies, or exits early surfaces as
    {!Worker_error} in the parent — never a hang. *)

exception Worker_error of string
(** A worker raised, was killed, or exited without reporting results. The
    message names the worker and the reason (the worker-side exception text
    when there was one). *)

val default_jobs : unit -> int
(** The EMC_JOBS environment variable when it is a positive integer;
    1 (sequential) otherwise. Non-integer values log a warning. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs f xs] is [Array.map f xs] computed by [jobs] forked workers
    (worker [k] takes the indices congruent to [k mod jobs]). [jobs]
    defaults to {!default_jobs}; values [<= 1] (or arrays of [<= 1]
    elements) run sequentially in-process with no fork. Results must be
    marshalable (no closures or custom blocks); raises {!Worker_error} if
    any worker fails. *)
