exception Worker_error of string

let m_tasks = Emc_obs.Metrics.counter "par.tasks"
let m_workers = Emc_obs.Metrics.counter "par.workers"
let m_maps = Emc_obs.Metrics.counter "par.maps"
let m_failures = Emc_obs.Metrics.counter "par.worker_failures"

let default_jobs () =
  match Sys.getenv_opt "EMC_JOBS" with
  | None -> 1
  | Some s -> (
      match int_of_string_opt s with
      | Some j when j >= 1 -> j
      | _ ->
          Emc_obs.Log.warn ~src:"par"
            ~fields:[ ("value", Emc_obs.Json.Str s) ]
            "EMC_JOBS=%s is not a positive integer; running sequentially" s;
          1)

(* Worker [k] owns the strided slice {i | i mod jobs = k}: static assignment
   keeps the task->worker mapping deterministic and needs no work queue. *)
let slice xs jobs k =
  let n = Array.length xs in
  let len = ((n - k - 1) / jobs) + 1 in
  Array.init len (fun j -> xs.(k + (j * jobs)))

let map ?jobs f xs =
  let n = Array.length xs in
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  let jobs = min jobs n in
  if jobs <= 1 || n <= 1 then Array.map f xs
  else
    Emc_obs.Trace.with_span ~cat:"par"
      ~args:(fun () ->
        [ ("tasks", Emc_obs.Json.Int n); ("workers", Emc_obs.Json.Int jobs) ])
      "par.map"
    @@ fun () ->
    Emc_obs.Metrics.add m_tasks n;
    Emc_obs.Metrics.add m_workers jobs;
    Emc_obs.Metrics.incr m_maps;
    (* pending stdio would be duplicated into every child's buffers *)
    flush stdout;
    flush stderr;
    let spawn k =
      let rfd, wfd = Unix.pipe () in
      match Unix.fork () with
      | 0 ->
          (* Child: compute the slice, marshal one (Ok results | Error msg)
             back, and leave with _exit so no inherited at_exit handler
             (trace flush, stdio) runs in the worker. *)
          (try
             Unix.close rfd;
             Emc_obs.Trace.disable ();
             let oc = Unix.out_channel_of_descr wfd in
             let r =
               try Ok (Array.map f (slice xs jobs k))
               with e -> Error (Printexc.to_string e)
             in
             Marshal.to_channel oc (r : (_, string) result) [];
             flush oc
           with _ -> ());
          Unix._exit 0
      | pid ->
          Unix.close wfd;
          (pid, rfd)
    in
    let children = Array.init jobs spawn in
    let results = Array.make n None in
    let failures = ref [] in
    let fail k fmt = Printf.ksprintf (fun m -> failures := Printf.sprintf "worker %d: %s" k m :: !failures) fmt in
    Array.iteri
      (fun k (pid, rfd) ->
        let ic = Unix.in_channel_of_descr rfd in
        (* reading a worker's pipe to EOF before reaping it cannot deadlock:
           each child is drained in turn, and a blocked child only waits for
           this loop to reach it *)
        Emc_obs.Trace.with_span ~cat:"par"
          ~args:(fun () -> [ ("worker", Emc_obs.Json.Int k) ])
          "par.worker"
          (fun () ->
            (match
               try (Marshal.from_channel ic : (_, string) result)
               with End_of_file | Failure _ ->
                 Error "died before reporting results"
             with
            | Ok arr ->
                if Array.length arr <> Array.length (slice xs jobs k) then
                  fail k "reported %d results for %d tasks" (Array.length arr)
                    (Array.length (slice xs jobs k))
                else Array.iteri (fun j v -> results.(k + (j * jobs)) <- Some v) arr
            | Error msg -> fail k "%s" msg);
            close_in ic;
            match snd (Unix.waitpid [] pid) with
            | Unix.WEXITED 0 -> ()
            | Unix.WEXITED c -> fail k "exited with code %d" c
            | Unix.WSIGNALED s -> fail k "killed by signal %d" s
            | Unix.WSTOPPED _ -> ()))
      children;
    (match !failures with
    | [] -> ()
    | msgs ->
        Emc_obs.Metrics.add m_failures (List.length msgs);
        raise (Worker_error (String.concat "; " (List.rev msgs))));
    Array.map
      (function Some v -> v | None -> raise (Worker_error "missing result"))
      results
