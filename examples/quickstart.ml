(** Quickstart: build an empirical performance model for one program and use
    it to predict execution time at configurations it has never seen.

    This walks the paper's Figure-1 loop explicitly — the same thing
    [Emc_core.Experiments.prepare] automates:

    1. pick predictor variables (the 25 parameters of Tables 1 & 2),
    2. select design points with a D-optimal design,
    3. measure the response (cycles) at each point by compiling the program
       and simulating it,
    4. fit a model (RBF network here),
    5. check its error on an independent test design.

    Run with: [dune exec examples/quickstart.exe] *)

open Emc_core
open Emc_workloads

let () =
  let rng = Emc_util.Rng.create 1 in
  (* gzip at a small input scale so this demo runs in ~a minute *)
  let workload = Registry.find "gzip" in
  let measure = Measure.create { Scale.tiny with workload_scale = 0.1 } in

  (* Step 2: a 48-point D-optimal training design over the coded space.
     Each point assigns values to all 14 compiler + 11 microarch params. *)
  let space = Params.space_all in
  let train_points = Emc_doe.Doe.generate rng space ~n:48 in
  Printf.printf "design of %d points, log det(X'X) = %.2f\n%!"
    (Array.length train_points)
    (Emc_doe.Doe.log_det_information train_points);

  (* Step 3: measure cycles at each design point (compile + simulate). *)
  let t0 = Unix.gettimeofday () in
  let train = Modeling.build_dataset measure workload ~variant:Workload.Train train_points in
  Printf.printf "measured %d configurations in %.1fs\n%!" (Array.length train_points)
    (Unix.gettimeofday () -. t0);

  (* Step 4: fit an RBF network (the paper's most accurate family). *)
  let model = Modeling.fit Modeling.Rbf train in

  (* Step 5: evaluate on an independent 16-point test design. *)
  let test_points = Emc_doe.Doe.lhs rng space 16 in
  let test = Modeling.build_dataset measure workload ~variant:Workload.Train test_points in
  Printf.printf "test MAPE: %.2f%%\n\n" (Emc_regress.Metrics.mape model.predict test);

  (* The model now predicts performance at arbitrary configurations at
     essentially zero cost. Compare a prediction against a real simulation: *)
  let flags = { Emc_opt.Flags.o2 with inline_functions = true } in
  let march = Emc_sim.Config.typical in
  let coded = Params.code Params.all_specs (Params.raw_of flags march) in
  let predicted = model.predict coded in
  let actual = Measure.cycles measure workload ~variant:Workload.Train flags march in
  Printf.printf "O2+inlining on the typical machine:\n";
  Printf.printf "  predicted %.0f cycles, measured %.0f cycles (%.1f%% off)\n" predicted actual
    (100.0 *. Float.abs (predicted -. actual) /. actual)
