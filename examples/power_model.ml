(** Power model: the paper's §2.2 remark made concrete — "models can also be
    built for other metrics such as power consumption or code size".

    The same Figure-1 pipeline (D-optimal design → measure → fit → validate)
    is run three times against three different responses of the very same
    simulations: execution time, an abstract Wattch-style energy estimate,
    and static code size. Because the measurement layer memoizes all three
    responses per simulation, the two extra models come almost for free.
    The example then contrasts what each model considers the most influential
    parameter — performance and power do not agree.

    Run with: [dune exec examples/power_model.exe [workload]] *)

open Emc_core
open Emc_workloads
open Emc_regress

let () =
  let wname = if Array.length Sys.argv > 1 then Sys.argv.(1) else "art" in
  let w = Registry.find wname in
  let scale = { Scale.tiny with workload_scale = 0.1 } in
  let measure = Measure.create scale in
  let rng = Emc_util.Rng.create 21 in
  let space = Params.space_all in
  let train_pts = Emc_doe.Doe.generate rng space ~n:scale.Scale.train_n in
  let test_pts = Emc_doe.Doe.lhs rng space scale.Scale.test_n in
  let build response =
    let measure_at pts =
      Dataset.create (Array.map Array.copy pts)
        (Array.map
           (fun p -> Measure.respond_coded ~response measure w ~variant:Workload.Train p)
           pts)
    in
    let train = measure_at train_pts in
    let test = measure_at test_pts in
    let model = Modeling.fit Modeling.Rbf train in
    (model, Metrics.mape model.Model.predict test)
  in
  Printf.printf "building cycles / energy / code-size models for %s (%d+%d points)...\n%!"
    w.name scale.Scale.train_n scale.Scale.test_n;
  let names = Params.names Params.all_specs in
  List.iter
    (fun response ->
      let model, err = build response in
      let effects = Effects.top_effects model.Model.predict ~dims:Params.n_all ~names in
      Printf.printf "\n%-10s: test MAPE %.2f%%; strongest effects:\n"
        (Measure.response_name response) err;
      List.iteri (fun i (n, e) -> if i < 5 then Printf.printf "   %-36s %+.4g\n" n e) effects)
    [ Measure.Cycles; Measure.Energy; Measure.CodeSize ];
  Printf.printf
    "\n(%d simulations total — each one produced all three responses)\n"
    measure.Measure.simulations
