(** Autotune: the paper's §6.3 scenario end to end.

    "It is conceivable that an empirical model (developed offline for all
    platforms) can be packaged with a program's compilation system. When the
    program is installed on a specific platform, the empirical model could
    be parametrized with the platform's configuration and used to search for
    the optimal optimization flags and heuristic settings."

    This example builds the model for one program, freezes the
    microarchitecture to each of the paper's three target platforms, runs
    the genetic-algorithm search over the 14 compiler parameters, and
    validates the prescribed settings against real simulation, reporting
    speedup over -O2 (the paper's Figure 7).

    Run with: [dune exec examples/autotune.exe [workload]] *)

open Emc_core
open Emc_workloads

let () =
  let wname = if Array.length Sys.argv > 1 then Sys.argv.(1) else "vortex" in
  let workload = Registry.find wname in
  let ctx = Experiments.create ~scale:Scale.tiny () in
  Printf.printf "building empirical model for %s...\n%!" workload.name;
  let d = Experiments.prepare ctx workload in
  let model = Experiments.rbf_model d in
  List.iter
    (fun (cname, march) ->
      let r =
        Searcher.search ~params:ctx.scale.Scale.ga ~rng:(Emc_util.Rng.split ctx.rng)
          ~model ~march ()
      in
      let o2 = Measure.cycles ctx.measure workload ~variant:Workload.Train Emc_opt.Flags.o2 march in
      let o3 = Measure.cycles ctx.measure workload ~variant:Workload.Train Emc_opt.Flags.o3 march in
      let best = Measure.cycles ctx.measure workload ~variant:Workload.Train r.Searcher.flags march in
      Printf.printf "\n%s (%s)\n" cname (Emc_sim.Config.to_string march);
      Printf.printf "  prescribed: %s\n" (Emc_opt.Flags.to_string r.Searcher.flags);
      Printf.printf "  -O2 %.0f cy | -O3 %+.2f%% | prescribed %+.2f%% over -O2\n%!" o2
        ((o2 /. o3 -. 1.0) *. 100.0)
        ((o2 /. best -. 1.0) *. 100.0))
    Experiments.configs
