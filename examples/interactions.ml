(** Interactions: the interpretive use of the models (paper §6.2, Table 4).

    MARS models can be read as a sum of named terms; the paper reports, for
    each program, the coefficients of the significant parameters and
    two-factor interactions — "the coefficient value is one-half the change
    in execution time caused by changing the variable(s) from their low to
    high value". This example builds the MARS model for a memory-bound
    program and prints those effects, separating microarchitectural
    parameters, compiler parameters, and cross interactions — the compiler ×
    hardware interactions are the paper's motivating object of study.

    Run with: [dune exec examples/interactions.exe [workload]] *)

open Emc_core
open Emc_workloads
open Emc_regress

let () =
  let wname = if Array.length Sys.argv > 1 then Sys.argv.(1) else "mcf" in
  let workload = Registry.find wname in
  let ctx = Experiments.create ~scale:Scale.tiny () in
  Printf.printf "building MARS model for %s...\n%!" workload.name;
  let d = Experiments.prepare ctx workload in
  let mars = Experiments.model_of d Modeling.Mars in
  let dims = Params.n_all in
  let names = Params.names Params.all_specs in
  Printf.printf "\nMARS basis functions (%d terms):\n" (List.length mars.Model.terms);
  List.iter (fun (n, c) -> Printf.printf "  %+12.4g * %s\n" c n) mars.Model.terms;

  let is_compiler name =
    Array.exists (fun s -> s.Params.name = name) Params.compiler_specs
  in
  let mains = Effects.main_effects mars.Model.predict ~dims in
  let inters = Effects.interaction_effects mars.Model.predict ~dims in
  let const = Effects.constant mars.Model.predict ~dims in
  Printf.printf "\nconstant (center of the space): %.4g cycles\n" const;
  Printf.printf "\nmain effects (cycles, low -> high / 2):\n";
  Array.iteri
    (fun i e ->
      if Float.abs e > Float.abs const *. 0.001 then
        Printf.printf "  %-24s %+12.4g   [%s]\n" names.(i) e
          (if is_compiler names.(i) then "compiler" else "microarch"))
    mains;
  Printf.printf "\ntwo-factor interactions above threshold:\n";
  List.iter
    (fun (i, j, e) ->
      if Float.abs e > Float.abs const *. 0.002 then begin
        let kind =
          match (is_compiler names.(i), is_compiler names.(j)) with
          | true, true -> "compiler x compiler"
          | false, false -> "microarch x microarch"
          | _ -> "compiler x MICROARCH  <- the paper's focus"
        in
        Printf.printf "  %-20s * %-20s %+12.4g   [%s]\n" names.(i) names.(j) e kind
      end)
    inters
