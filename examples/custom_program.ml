(** Custom program: using the substrate directly, without the modeling layer.

    The reproduction had to build a complete optimizing compiler (MiniC →
    IR → optimization passes → RISC code) and a cycle-accurate out-of-order
    simulator; both are usable as ordinary libraries. This example compiles
    a user-written MiniC program at two optimization levels, checks that
    optimization preserved its observable outputs against the IR reference
    interpreter, and sweeps the D-cache size to show the measured
    interaction between loop optimizations and the memory hierarchy.

    Run with: [dune exec examples/custom_program.exe] *)

let source =
  {|
int a[4096];
int b[4096];

fn saxpyish(n: int, k: int) -> int {
  let s = 0;
  for (i = 0; i < n; i = i + 1) {
    b[i] = a[i] * k + b[i];
    s = s + b[i];
  }
  return s;
}

fn main() -> int {
  for (i = 0; i < 4096; i = i + 1) {
    a[i] = i % 17;
    b[i] = i % 5;
  }
  let total = 0;
  for (r = 0; r < 24; r = r + 1) {
    total = total + saxpyish(4096, r + 1);
  }
  out(total);
  return total;
}
|}

let () =
  (* frontend: source -> verified IR *)
  let ir = Emc_lang.Minic.compile_exn source in
  (* reference semantics from the IR interpreter *)
  let st = Emc_ir.Interp.create ir in
  let reference = Emc_ir.Interp.run st ~func:"main" ~args:[] in
  let ref_out =
    List.map (function Emc_ir.Interp.VI v -> string_of_int v | VF f -> string_of_float f)
      reference.outputs
  in
  Printf.printf "reference outputs: [%s] (%d IR instructions executed)\n\n"
    (String.concat "; " ref_out) reference.dyn_instrs;
  List.iter
    (fun (name, flags) ->
      (* middle end + backend *)
      let opt = Emc_opt.Pipeline.optimize ~issue_width:4 flags ir in
      let prog =
        Emc_codegen.Codegen.emit_program
          ~omit_frame_pointer:flags.Emc_opt.Flags.omit_frame_pointer opt
      in
      (* functional check against the interpreter *)
      let f = Emc_sim.Func.create prog in
      let dyn = Emc_sim.Func.run f in
      let outs =
        List.map
          (function Emc_sim.Func.VI v -> string_of_int v | VF x -> string_of_float x)
          (Emc_sim.Func.outputs f)
      in
      assert (outs = ref_out);
      Printf.printf "%s: %d machine instructions, %d executed — outputs match\n" name
        (Array.length prog.Emc_isa.Isa.insts) dyn;
      (* timing: sweep the D-cache size *)
      List.iter
        (fun kb ->
          let march = { Emc_sim.Config.typical with dcache_kb = kb } in
          let r = Emc_sim.Smarts.run_full march prog ~setup:(fun _ -> ()) in
          Printf.printf "   dl1=%3dKB: %8.0f cycles (CPI %.2f)\n" kb r.cycles r.cpi)
        [ 8; 32; 128 ];
      Printf.printf "\n")
    [ ("-O0", Emc_opt.Flags.o0); ("-O2", Emc_opt.Flags.o2);
      ("-O2 + prefetch", { Emc_opt.Flags.o2 with prefetch_loop_arrays = true }) ]
