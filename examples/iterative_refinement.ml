(** Iterative refinement: the paper's Figure-1 loop run explicitly.

    "Repeat steps 3 and 4 until a model with desired accuracy is obtained
    ... empirical models with a desired level of accuracy can be built
    simply by collecting more data." D-optimal designs are extensible, so
    each round augments the previous design rather than starting over.

    This example grows a training design in fixed steps until the RBF
    model's error on an independent test design drops below a target (or a
    budget is hit) and prints the error trajectory — the programmatic form
    of the learning curves in Figure 5.

    Run with: [dune exec examples/iterative_refinement.exe [workload]] *)

open Emc_core
open Emc_workloads

let () =
  let wname = if Array.length Sys.argv > 1 then Sys.argv.(1) else "bzip2" in
  let w = Registry.find wname in
  let scale = { Scale.tiny with workload_scale = 0.1 } in
  let measure = Measure.create scale in
  let rng = Emc_util.Rng.create 31 in
  (* independent test design, measured once *)
  let test_pts = Emc_doe.Doe.lhs rng Params.space_all 16 in
  let test = Modeling.build_dataset measure w ~variant:Workload.Train test_pts in
  Printf.printf "refining an RBF model for %s until error <= 8%% (or 96 points)...\n%!" w.name;
  let model, trajectory =
    Modeling.iterate ~step:24 ~target_error:8.0 ~max_n:96 ~rng ~measure ~workload:w
      ~variant:Workload.Train ~technique:Modeling.Rbf ~test ()
  in
  List.iter
    (fun (n, err) -> Printf.printf "  n=%3d  test MAPE = %5.2f%%\n" n err)
    trajectory;
  let final_n, final_err = List.nth trajectory (List.length trajectory - 1) in
  Printf.printf "\nstopped at n=%d with %.2f%% error (%d simulations incl. the test design)\n"
    final_n final_err measure.Measure.simulations;
  (* the refined model in use: predict -O3 on the typical machine *)
  let coded = Params.code Params.all_specs (Params.raw_of Emc_opt.Flags.o3 Emc_sim.Config.typical) in
  Printf.printf "model(-O3, typical) = %.0f predicted cycles\n" (model.Emc_regress.Model.predict coded)
